"""Unit tests for relation schemas."""

from __future__ import annotations

import pytest

from repro.relational import attrset
from repro.relational.schema import RelationSchema, SchemaError


class TestConstruction:
    def test_basic(self):
        schema = RelationSchema(["a", "b"])
        assert len(schema) == 2
        assert schema.names == ["a", "b"]

    def test_of_width(self):
        schema = RelationSchema.of_width(3)
        assert schema.names == ["col0", "col1", "col2"]

    def test_of_width_custom_prefix(self):
        schema = RelationSchema.of_width(2, prefix="x")
        assert schema.names == ["x0", "x1"]

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema([])
        with pytest.raises(SchemaError):
            RelationSchema.of_width(0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(["a", "a"])

    def test_bad_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(["a", ""])
        with pytest.raises(SchemaError):
            RelationSchema(["a", 3])  # type: ignore[list-item]


class TestLookup:
    def test_name_index_roundtrip(self):
        schema = RelationSchema(["x", "y", "z"])
        for i, name in enumerate(["x", "y", "z"]):
            assert schema.index_of(name) == i
            assert schema.name_of(i) == name

    def test_unknown_name(self):
        schema = RelationSchema(["x"])
        with pytest.raises(SchemaError):
            schema.index_of("nope")

    def test_index_out_of_range(self):
        schema = RelationSchema(["x"])
        with pytest.raises(SchemaError):
            schema.name_of(5)

    def test_resolve(self):
        schema = RelationSchema(["x", "y"])
        assert schema.resolve("y") == 1
        assert schema.resolve(0) == 0
        with pytest.raises(SchemaError):
            schema.resolve(2)
        with pytest.raises(SchemaError):
            schema.resolve(1.5)  # type: ignore[arg-type]

    def test_contains(self):
        schema = RelationSchema(["x", "y"])
        assert "x" in schema
        assert "q" not in schema


class TestAttrSets:
    def test_attr_set_mixed_references(self):
        schema = RelationSchema(["a", "b", "c"])
        mask = schema.attr_set(["a", 2])
        assert attrset.to_list(mask) == [0, 2]

    def test_all_attrs(self):
        schema = RelationSchema(["a", "b"])
        assert schema.all_attrs() == 0b11

    def test_format_attr_set(self):
        schema = RelationSchema(["a", "b", "c"])
        assert schema.format_attr_set(0b101) == "a,c"
        assert schema.format_attr_set(0) == "∅"


class TestMisc:
    def test_equality_and_hash(self):
        assert RelationSchema(["a"]) == RelationSchema(["a"])
        assert RelationSchema(["a"]) != RelationSchema(["b"])
        assert hash(RelationSchema(["a", "b"])) == hash(RelationSchema(["a", "b"]))

    def test_project(self):
        schema = RelationSchema(["a", "b", "c"])
        projected = schema.project(["c", 0])
        assert projected.names == ["c", "a"]

    def test_iteration(self):
        assert list(RelationSchema(["p", "q"])) == ["p", "q"]
