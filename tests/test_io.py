"""Unit tests for CSV I/O."""

from __future__ import annotations

import pytest

from repro.relational.io import read_csv, read_csv_text, to_csv_text, write_csv
from repro.relational.null import NULL, NullSemantics

CSV = """name,zip,city
ann,z1,c1
bob,,c1
cat,z2,?
"""


class TestReadCsvText:
    def test_basic(self):
        rel = read_csv_text(CSV)
        assert rel.schema.names == ["name", "zip", "city"]
        assert rel.n_rows == 3
        assert rel.value(0, 0) == "ann"

    def test_default_null_markers(self):
        rel = read_csv_text(CSV)
        assert rel.value(1, 1) is NULL
        assert rel.value(2, 2) is NULL

    def test_custom_null_markers(self):
        rel = read_csv_text(CSV, null_markers={"?"})
        assert rel.value(1, 1) == ""  # empty no longer null
        assert rel.value(2, 2) is NULL

    def test_no_header(self):
        rel = read_csv_text("a,b\nc,d\n", has_header=False)
        assert rel.schema.names == ["col0", "col1"]
        assert rel.n_rows == 2

    def test_max_rows(self):
        rel = read_csv_text(CSV, max_rows=2)
        assert rel.n_rows == 2

    def test_semantics_forwarded(self):
        rel = read_csv_text(CSV, semantics="neq")
        assert rel.semantics is NullSemantics.NEQ

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            read_csv_text("", has_header=False)

    def test_delimiter(self):
        rel = read_csv_text("a;b\n1;2\n", delimiter=";")
        assert rel.schema.names == ["a", "b"]
        assert rel.value(0, 1) == "2"


class TestMalformedInput:
    def test_ragged_rows_rejected(self):
        from repro.relational.schema import SchemaError

        with pytest.raises(SchemaError):
            read_csv_text("a,b\n1,2\n3\n")

    def test_header_only(self):
        rel = read_csv_text("a,b\n")
        assert rel.n_rows == 0
        assert rel.schema.names == ["a", "b"]

    def test_quoted_fields_with_commas(self):
        rel = read_csv_text('a,b\n"x,y",z\n')
        assert rel.value(0, 0) == "x,y"


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        rel = read_csv_text(CSV)
        path = tmp_path / "out.csv"
        write_csv(rel, path)
        back = read_csv(path)
        assert list(back.iter_rows()) == list(rel.iter_rows())
        assert back.schema == rel.schema

    def test_to_csv_text_nulls(self):
        rel = read_csv_text(CSV)
        text = to_csv_text(rel, null_marker="NULL")
        assert "bob,NULL,c1" in text.replace("\r", "")

    def test_text_roundtrip(self):
        rel = read_csv_text(CSV)
        again = read_csv_text(to_csv_text(rel))
        assert list(again.iter_rows()) == list(rel.iter_rows())


class TestBadRowPolicies:
    RAGGED = "a,b,c\n1,2,3\n4,5\n6,7,8,9\n10,11,12\n"

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            read_csv_text(self.RAGGED, on_bad_row="ignore")

    def test_raise_names_offending_line(self):
        from repro.relational.schema import SchemaError

        with pytest.raises(SchemaError) as excinfo:
            read_csv_text(self.RAGGED)
        message = str(excinfo.value)
        assert "CSV line 3" in message
        assert "expected 3 fields, got 2" in message

    def test_raise_is_a_value_error(self):
        with pytest.raises(ValueError):
            read_csv_text(self.RAGGED)

    def test_skip_quarantines_ragged_rows(self):
        rel = read_csv_text(self.RAGGED, on_bad_row="skip")
        assert rel.n_rows == 2
        assert rel.value(0, 0) == "1"
        assert rel.value(1, 0) == "10"

    def test_pad_fills_short_and_truncates_long(self):
        rel = read_csv_text(self.RAGGED, on_bad_row="pad")
        assert rel.n_rows == 4
        assert rel.value(1, 2) is NULL  # "4,5" padded with a null
        assert rel.value(2, 2) == "8"  # "6,7,8,9" truncated to width

    def test_quarantine_telemetry(self):
        from repro.telemetry import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            read_csv_text(self.RAGGED, on_bad_row="skip")
        events = tracer.find_events("csv_quarantine")
        assert len(events) == 1
        assert events[0].attrs["kind"] == "ragged_row"
        assert events[0].attrs["policy"] == "skip"
        assert events[0].attrs["quarantined"] == 2
        assert events[0].attrs["padded"] == 0
        assert tracer.metrics.counter("io.quarantined_rows").value == 2

    def test_clean_input_emits_no_quarantine_event(self):
        from repro.telemetry import Tracer, use_tracer

        tracer = Tracer()
        with use_tracer(tracer):
            read_csv_text(CSV, on_bad_row="skip")
        assert not tracer.find_events("csv_quarantine")

    def test_undecodable_bytes_raise_with_line(self, tmp_path):
        from repro.relational.schema import SchemaError

        path = tmp_path / "bad.csv"
        path.write_bytes(b"a,b\n1,2\n3,\xff\n")
        with pytest.raises(SchemaError) as excinfo:
            read_csv(path)
        assert "CSV line 3" in str(excinfo.value)

    def test_undecodable_bytes_skipped_under_policy(self, tmp_path):
        from repro.telemetry import Tracer, use_tracer

        path = tmp_path / "bad.csv"
        path.write_bytes(b"a,b\n1,2\n3,\xff\n")
        tracer = Tracer()
        with use_tracer(tracer):
            rel = read_csv(path, on_bad_row="skip")
        assert rel.n_rows == 2  # replacement char keeps the row rectangular
        events = tracer.find_events("csv_quarantine")
        assert events and events[0].attrs["kind"] == "decode"


class TestCsvCorruptionFault:
    def test_corrupt_row_fault_drops_last_field(self):
        from repro.resilience import faults

        faults.activate("csv.corrupt_row", times=1)
        try:
            with pytest.raises(ValueError):
                read_csv_text("a,b\n1,2\n3,4\n")
        finally:
            faults.reset()

    def test_corrupt_row_fault_survived_by_skip_policy(self):
        from repro.resilience import faults

        faults.activate("csv.corrupt_row", times=1)
        try:
            rel = read_csv_text("a,b\n1,2\n3,4\n", on_bad_row="skip")
        finally:
            faults.reset()
        assert rel.n_rows == 1
