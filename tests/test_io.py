"""Unit tests for CSV I/O."""

from __future__ import annotations

import pytest

from repro.relational.io import read_csv, read_csv_text, to_csv_text, write_csv
from repro.relational.null import NULL, NullSemantics

CSV = """name,zip,city
ann,z1,c1
bob,,c1
cat,z2,?
"""


class TestReadCsvText:
    def test_basic(self):
        rel = read_csv_text(CSV)
        assert rel.schema.names == ["name", "zip", "city"]
        assert rel.n_rows == 3
        assert rel.value(0, 0) == "ann"

    def test_default_null_markers(self):
        rel = read_csv_text(CSV)
        assert rel.value(1, 1) is NULL
        assert rel.value(2, 2) is NULL

    def test_custom_null_markers(self):
        rel = read_csv_text(CSV, null_markers={"?"})
        assert rel.value(1, 1) == ""  # empty no longer null
        assert rel.value(2, 2) is NULL

    def test_no_header(self):
        rel = read_csv_text("a,b\nc,d\n", has_header=False)
        assert rel.schema.names == ["col0", "col1"]
        assert rel.n_rows == 2

    def test_max_rows(self):
        rel = read_csv_text(CSV, max_rows=2)
        assert rel.n_rows == 2

    def test_semantics_forwarded(self):
        rel = read_csv_text(CSV, semantics="neq")
        assert rel.semantics is NullSemantics.NEQ

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            read_csv_text("", has_header=False)

    def test_delimiter(self):
        rel = read_csv_text("a;b\n1;2\n", delimiter=";")
        assert rel.schema.names == ["a", "b"]
        assert rel.value(0, 1) == "2"


class TestMalformedInput:
    def test_ragged_rows_rejected(self):
        from repro.relational.schema import SchemaError

        with pytest.raises(SchemaError):
            read_csv_text("a,b\n1,2\n3\n")

    def test_header_only(self):
        rel = read_csv_text("a,b\n")
        assert rel.n_rows == 0
        assert rel.schema.names == ["a", "b"]

    def test_quoted_fields_with_commas(self):
        rel = read_csv_text('a,b\n"x,y",z\n')
        assert rel.value(0, 0) == "x,y"


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        rel = read_csv_text(CSV)
        path = tmp_path / "out.csv"
        write_csv(rel, path)
        back = read_csv(path)
        assert list(back.iter_rows()) == list(rel.iter_rows())
        assert back.schema == rel.schema

    def test_to_csv_text_nulls(self):
        rel = read_csv_text(CSV)
        text = to_csv_text(rel, null_marker="NULL")
        assert "bob,NULL,c1" in text.replace("\r", "")

    def test_text_roundtrip(self):
        rel = read_csv_text(CSV)
        again = read_csv_text(to_csv_text(rel))
        assert list(again.iter_rows()) == list(rel.iter_rows())
