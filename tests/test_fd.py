"""Unit tests for FD and FDSet."""

from __future__ import annotations

import pytest

from repro.relational import attrset
from repro.relational.fd import FD, FDSet, normalize_singleton_cover
from repro.relational.schema import RelationSchema


class TestFD:
    def test_of_with_indices(self):
        fd = FD.of([0, 1], 2)
        assert attrset.to_list(fd.lhs) == [0, 1]
        assert attrset.to_list(fd.rhs) == [2]

    def test_of_with_names(self):
        schema = RelationSchema(["a", "b", "c"])
        fd = FD.of(["a"], "c", schema)
        assert fd == FD.of([0], 2)

    def test_of_multi_rhs(self):
        fd = FD.of([0], [1, 2])
        assert fd.rhs_size == 2

    def test_names_without_schema_rejected(self):
        with pytest.raises(ValueError):
            FD.of(["a"], 1)

    def test_empty_rhs_rejected(self):
        with pytest.raises(ValueError):
            FD(attrset.singleton(0), attrset.EMPTY)

    def test_overlapping_lhs_rhs_rejected(self):
        with pytest.raises(ValueError):
            FD(attrset.from_attrs([0, 1]), attrset.singleton(1))

    def test_empty_lhs_allowed(self):
        fd = FD(attrset.EMPTY, attrset.singleton(0))
        assert fd.lhs_size == 0

    def test_sizes_and_occurrences(self):
        fd = FD.of([0, 1], [2, 3])
        assert fd.lhs_size == 2
        assert fd.rhs_size == 2
        assert fd.attribute_occurrences == 4

    def test_split(self):
        fd = FD.of([0], [1, 2])
        parts = set(fd.split())
        assert parts == {FD.of([0], 1), FD.of([0], 2)}

    def test_format(self):
        schema = RelationSchema(["a", "b", "c"])
        assert FD.of(["a", "b"], "c", schema).format(schema) == "a,b -> c"
        assert FD.of([], "c", schema).format(schema) == "∅ -> c"

    def test_str(self):
        assert str(FD.of([0, 2], 1)) == "0,2 -> 1"

    def test_ordering_deterministic(self):
        fds = [FD.of([1], 2), FD.of([0], 2), FD.of([0], 1)]
        assert sorted(fds) == sorted(fds[::-1])

    def test_hash_equality(self):
        assert FD.of([0], 1) == FD.of([0], 1)
        assert hash(FD.of([0], 1)) == hash(FD.of([0], 1))


class TestFDSet:
    def test_add_discard(self):
        fds = FDSet()
        fd = FD.of([0], 1)
        fds.add(fd)
        fds.add(fd)
        assert len(fds) == 1
        fds.discard(fd)
        assert len(fds) == 0

    def test_contains(self):
        fds = FDSet([FD.of([0], 1)])
        assert FD.of([0], 1) in fds
        assert FD.of([1], 0) not in fds

    def test_iteration_sorted(self):
        fds = FDSet([FD.of([1], 2), FD.of([0], 1)])
        listed = list(fds)
        assert listed == sorted(listed)

    def test_equality(self):
        assert FDSet([FD.of([0], 1)]) == FDSet([FD.of([0], 1)])
        assert FDSet() != FDSet([FD.of([0], 1)])

    def test_copy_independent(self):
        original = FDSet([FD.of([0], 1)])
        clone = original.copy()
        clone.add(FD.of([1], 2))
        assert len(original) == 1

    def test_split(self):
        fds = FDSet([FD.of([0], [1, 2])])
        assert fds.split() == FDSet([FD.of([0], 1), FD.of([0], 2)])

    def test_attribute_occurrences(self):
        fds = FDSet([FD.of([0, 1], 2), FD.of([0], [1, 3])])
        assert fds.attribute_occurrences == 3 + 3

    def test_format(self):
        schema = RelationSchema(["a", "b"])
        fds = FDSet([FD.of(["a"], "b", schema)])
        assert fds.format(schema) == ["a -> b"]


class TestNormalize:
    def test_merges_and_splits(self):
        cover = normalize_singleton_cover([FD.of([0], [1, 2]), FD.of([0], 1)])
        assert cover == FDSet([FD.of([0], 1), FD.of([0], 2)])

    def test_empty(self):
        assert len(normalize_singleton_cover([])) == 0
