"""Adversarial and degenerate inputs for the discovery stack."""

from __future__ import annotations

import pytest

from repro.algorithms import make_algorithm
from repro.relational import attrset
from repro.relational.fd import FD
from repro.relational.null import NULL
from repro.relational.relation import Relation

HYBRIDS = ["tane", "fdep2", "fastfds", "hyfd", "dhyfd"]


def fds_of(name, rel):
    return make_algorithm(name).discover(rel).fds


@pytest.mark.parametrize("name", HYBRIDS)
class TestDegenerateShapes:
    def test_identical_columns(self, name):
        """Duplicated columns determine each other pairwise."""
        rows = [(v, v, str(i)) for i, v in enumerate("aabbcc")]
        rel = Relation.from_rows(rows, ["x", "y", "id"])
        fds = fds_of(name, rel)
        assert FD.of([0], 1) in fds
        assert FD.of([1], 0) in fds

    def test_all_nulls_column_eq(self, name):
        rows = [(str(i), NULL) for i in range(5)]
        rel = Relation.from_rows(rows, ["id", "void"])
        fds = fds_of(name, rel)
        # under EQ an all-null column is constant
        assert FD.of([], 1) in fds

    def test_all_nulls_column_neq(self, name):
        rows = [(str(i % 2), NULL) for i in range(5)]
        rel = Relation.from_rows(rows, ["grp", "void"], semantics="neq")
        fds = fds_of(name, rel)
        # under NEQ every null is unique: the column is a key
        assert FD.of([1], 0) in fds
        assert FD.of([], 1) not in fds

    def test_wide_single_row(self, name):
        rel = Relation.from_rows([tuple(str(i) for i in range(12))])
        fds = fds_of(name, rel)
        assert len(fds) == 12
        assert all(fd.lhs == attrset.EMPTY for fd in fds)

    def test_two_identical_rows(self, name):
        rel = Relation.from_rows([("a", "b"), ("a", "b")])
        fds = fds_of(name, rel)
        assert FD.of([], 0) in fds
        assert FD.of([], 1) in fds

    def test_pairwise_equivalent_columns(self, name):
        """Three copies of one column: a cycle of singleton FDs, no
        2-attribute LHS should survive minimization."""
        rows = [(v, v, v) for v in "abcab"]
        rel = Relation.from_rows(rows)
        fds = fds_of(name, rel)
        assert all(fd.lhs_size <= 1 for fd in fds)
        assert len(fds) == 6

    def test_binary_matrix_complement(self, name):
        """A column and its logical complement determine each other."""
        rows = [(str(b), str(1 - b), str(i)) for i, b in enumerate([0, 1, 0, 1, 1])]
        rel = Relation.from_rows(rows, ["b", "notb", "id"])
        fds = fds_of(name, rel)
        assert FD.of([0], 1) in fds
        assert FD.of([1], 0) in fds


class TestValueEdgeCases:
    @pytest.mark.parametrize("name", ["dhyfd", "tane"])
    def test_values_with_weird_types(self, name):
        """Mixed hashable Python values are fine (DIIS sees equality only)."""
        rows = [
            (1, "1", ("t", 1)),
            (1, "1", ("t", 1)),
            (2, "2", ("t", 2)),
        ]
        rel = Relation.from_rows(rows, ["int", "str", "tup"])
        fds = fds_of(name, rel)
        assert FD.of([0], 1) in fds

    @pytest.mark.parametrize("name", ["dhyfd", "fdep2"])
    def test_empty_string_is_a_value_not_null(self, name):
        rows = [("", "x"), ("", "x"), ("v", "y")]
        rel = Relation.from_rows(rows, ["a", "b"])
        fds = fds_of(name, rel)
        assert FD.of([0], 1) in fds  # "" behaves like any other value
