"""Top-k discovery: tracker unit tests, bounded ranking, differential.

The contract under test (ISSUE: rank-aware top-k discovery): for any
relation, ``discover_top_k(k)`` returns exactly the FDs that a full
discovery followed by :func:`rank_cover` would place in positions
1..k — same ``(-redundancy, lhs, rhs)`` tie-break — while pruning
candidate LHSs whose redundancy upper bound cannot reach the running
k-th redundancy (``stats.pruned_candidates``).
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import make_algorithm
from repro.core.dhyfd import DHyFD
from repro.algorithms.tane import TANE
from repro.partitions.cache import PartitionCache
from repro.ranking.ranker import rank_cover
from repro.ranking.redundancy import redundancy_upper_bound
from repro.ranking.topk import TopKTracker
from repro.relational import attrset
from repro.relational.fd import FD, FDSet
from repro.relational.null import NullSemantics
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


def fd(lhs_bits, rhs_bit):
    return FD(lhs_bits, attrset.singleton(rhs_bit))


class TestTopKTracker:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            TopKTracker(0)

    def test_threshold_none_until_full(self):
        tracker = TopKTracker(2)
        assert tracker.threshold is None
        assert not tracker.full
        tracker.add(fd(0b01, 1), 10)
        assert tracker.threshold is None
        tracker.add(fd(0b10, 0), 4)
        assert tracker.full
        assert tracker.threshold == 4

    def test_threshold_tracks_kth_largest(self):
        tracker = TopKTracker(2)
        for redundancy, f in [(3, fd(0b001, 1)), (9, fd(0b010, 0)), (7, fd(0b100, 0))]:
            tracker.add(f, redundancy)
        assert tracker.threshold == 7

    def test_can_prune_is_strict(self):
        """bound == threshold must NOT prune: a tie may win on lhs/rhs."""
        tracker = TopKTracker(1)
        tracker.add(fd(0b10, 0), 5)
        assert tracker.can_prune(4)
        assert not tracker.can_prune(5)
        assert not tracker.can_prune(6)

    def test_top_orders_by_redundancy_then_fd(self):
        tracker = TopKTracker(3)
        a, b, c = fd(0b001, 1), fd(0b010, 0), fd(0b100, 0)
        tracker.add(c, 5)
        tracker.add(a, 5)
        tracker.add(b, 9)
        assert tracker.top() == [(b, 9), (a, 5), (c, 5)]

    def test_cover_holds_first_k_only(self):
        tracker = TopKTracker(2)
        for redundancy, f in [(3, fd(0b001, 1)), (9, fd(0b010, 0)), (7, fd(0b100, 0))]:
            tracker.add(f, redundancy)
        assert tracker.cover() == FDSet([fd(0b010, 0), fd(0b100, 0)])


class TestRedundancyUpperBound:
    def make_relation(self):
        rows = [
            ("a", "x", 1),
            ("a", "x", 2),
            ("b", "y", 3),
            ("c", "y", 4),
        ]
        return Relation.from_rows(rows, RelationSchema(["p", "q", "r"]))

    def test_empty_lhs_bound_is_all_rows(self):
        relation = self.make_relation()
        assert redundancy_upper_bound(relation, attrset.EMPTY) == relation.n_rows

    def test_bound_is_min_singleton_size(self):
        relation = self.make_relation()
        # ||pi_p|| = 2 (the two a-rows), ||pi_q|| = 4 (x-pair + y-pair).
        bound = redundancy_upper_bound(relation, attrset.from_attrs([0, 1]))
        assert bound == 2

    def test_cached_exact_partition_tightens_bound(self):
        relation = self.make_relation()
        cache = PartitionCache(relation)
        lhs = attrset.from_attrs([0, 1])
        exact = cache.get(lhs).size
        assert redundancy_upper_bound(relation, lhs, cache) == exact
        assert exact <= 2

    def test_bound_dominates_exact_redundancy(self, random_relation_factory):
        for seed in range(8):
            relation = random_relation_factory(seed)
            result = DHyFD().discover(relation)
            ranking = rank_cover(relation, result.fds)
            for ranked in ranking.ranked:
                bound = redundancy_upper_bound(relation, ranked.fd.lhs)
                assert bound >= ranked.redundancy


class TestBoundedRankCover:
    def test_top_k_prefix_identical(self, random_relation_factory):
        for seed in range(12):
            relation = random_relation_factory(seed)
            cover = DHyFD().discover(relation).fds
            full = rank_cover(relation, cover)
            for k in (1, 3, 10):
                bounded = rank_cover(relation, cover, top_k=k)
                assert bounded.ranked == full.ranked[: k]
                assert bounded.top_k == k

    def test_bound_skipped_counts_pruned_tail(self):
        # One high-redundancy FD and several zero-redundancy key FDs:
        # with k=1 the keys' bounds (0) fall below the threshold.
        rows = [(1, i, i, i) for i in range(8)] + [(1, 8, 8, 0)]
        relation = Relation.from_rows(rows, RelationSchema(["a", "b", "c", "d"]))
        cover = DHyFD().discover(relation).fds
        full = rank_cover(relation, cover)
        bounded = rank_cover(relation, cover, top_k=1)
        assert bounded.ranked == full.ranked[:1]
        assert bounded.bound_skipped > 0

    def test_invalid_top_k_rejected(self, city_relation):
        cover = DHyFD().discover(city_relation).fds
        with pytest.raises(ValueError):
            rank_cover(city_relation, cover, top_k=0)

    def test_full_ranking_reports_no_skips(self, city_relation):
        cover = DHyFD().discover(city_relation).fds
        ranking = rank_cover(city_relation, cover)
        assert ranking.top_k is None
        assert ranking.bound_skipped == 0


class TestSerialParallelTieOrder:
    def test_duplicated_columns_rank_identically(self):
        """Ties (duplicate columns have equal redundancy) must order
        the same serially and with jobs>1: the final sort key includes
        the FD itself, never submission order."""
        rows = [(i % 3, i % 3, i % 3, i) for i in range(30)]
        relation = Relation.from_rows(
            rows, RelationSchema(["x", "y", "z", "key"])
        )
        cover = DHyFD().discover(relation).fds
        serial = rank_cover(relation, cover, jobs=1)
        parallel = rank_cover(relation, cover, jobs=2)
        assert serial.ranked == parallel.ranked

    def test_random_relations_rank_identically(self, random_relation_factory):
        for seed in (0, 3, 8, 11):
            relation = random_relation_factory(seed)
            cover = DHyFD().discover(relation).fds
            serial = rank_cover(relation, cover, jobs=1)
            parallel = rank_cover(relation, cover, jobs=2)
            assert serial.ranked == parallel.ranked


def first_k(relation, cover, k):
    """The expected top-k: first k of the fully ranked cover."""
    ranking = rank_cover(relation, cover)
    return FDSet(ranked.fd for ranked in ranking.ranked[:k])


class TestDifferentialTopK:
    """discover_top_k == first k of the full ranked cover, everywhere."""

    @pytest.mark.parametrize("algorithm_cls", [DHyFD, TANE])
    @pytest.mark.parametrize("semantics", [NullSemantics.EQ, NullSemantics.NEQ])
    def test_matches_full_ranked_cover(
        self, algorithm_cls, semantics, random_relation_factory
    ):
        pruned_total = 0
        for seed in range(25):
            relation = random_relation_factory(seed, semantics=semantics)
            full = algorithm_cls().discover(relation)
            for k in (1, 5):
                result = algorithm_cls().discover_top_k(relation, k)
                assert result.fds == first_k(relation, full.fds, k), (
                    f"seed={seed} k={k}"
                )
                assert result.top_k == k
                pruned_total += result.stats.pruned_candidates
        # The estimator must actually prune somewhere across the sweep —
        # otherwise "early termination" is dead code.
        assert pruned_total > 0

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_backends_and_jobs_agree(self, backend, jobs, random_relation_factory):
        for seed in (1, 3, 11):
            relation = random_relation_factory(seed)
            algo = DHyFD(backend=backend, jobs=jobs, parallel_min_rows=1)
            full = DHyFD().discover(relation)
            for k in (1, 4):
                result = algo.discover_top_k(relation, k)
                assert result.fds == first_k(relation, full.fds, k)

    def test_generic_fallback_algorithm(self, random_relation_factory):
        """Algorithms without a rank-aware search use the bounded-rank
        fallback and still meet the exactness contract."""
        for seed in (1, 8):
            relation = random_relation_factory(seed)
            algo = make_algorithm("fdep")
            full = algo.discover(relation)
            result = make_algorithm("fdep").discover_top_k(relation, 3)
            assert result.fds == first_k(relation, full.fds, 3)
            assert result.top_k == 3

    def test_pruning_happens_on_engineered_relation(self):
        """Dominant duplicate-column FDs (redundancy 60) above near-key
        columns (stripped sizes <= 40): every compound candidate over
        the near-keys is bounded strictly below the running threshold,
        so both algorithms must prune."""
        rows = []
        for i in range(60):
            rows.append(
                (
                    i % 2,                      # dup1
                    i % 2,                      # dup2 (ties dup1)
                    i if i < 20 else 20 + (i % 5),   # u: 20 singletons + clusters
                    i if i < 20 else 20 + (i // 8),  # v: near-key, other clustering
                    (i * 7) % 13,               # w: forces level-2 FDs
                )
            )
        relation = Relation.from_rows(
            rows, RelationSchema(["dup1", "dup2", "u", "v", "w"])
        )
        for algorithm_cls in (DHyFD, TANE):
            full = algorithm_cls().discover(relation)
            result = algorithm_cls().discover_top_k(relation, 2)
            assert result.fds == first_k(relation, full.fds, 2)
            assert result.stats.pruned_candidates > 0, algorithm_cls.__name__

    def test_k_larger_than_cover_returns_everything(self, city_relation):
        full = DHyFD().discover(city_relation)
        result = DHyFD().discover_top_k(city_relation, 1000)
        assert result.fds == full.fds

    def test_invalid_k_rejected(self, city_relation):
        with pytest.raises(ValueError):
            DHyFD().discover_top_k(city_relation, 0)

    def test_payload_round_trip_preserves_top_k(self, city_relation):
        result = DHyFD().discover_top_k(city_relation, 2)
        from repro.core.result import DiscoveryResult

        restored = DiscoveryResult.from_payload(result.to_payload())
        assert restored.top_k == 2
        assert restored.fds == result.fds
        assert restored.stats.pruned_candidates == result.stats.pruned_candidates
