"""Unit tests for redundant-occurrence counting (paper §VI)."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import random_relation
from repro.partitions.cache import PartitionCache
from repro.ranking.redundancy import (
    NullPolicy,
    count_redundant,
    dataset_redundancy,
    redundancy_positions,
    redundant_rows_for_lhs,
)
from repro.relational import attrset
from repro.relational.fd import FD, FDSet
from repro.relational.null import NULL
from repro.relational.relation import Relation


def A(*attrs):
    return attrset.from_attrs(attrs)


class TestCountRedundant:
    def test_constant_fd_counts_all_rows(self, city_relation):
        # ∅ -> state fixes the state value of every row (the paper's σ1)
        fd = FD(attrset.EMPTY, A(3))
        assert count_redundant(city_relation, fd) == 6

    def test_key_lhs_counts_nothing(self, city_relation):
        # name is a key: no two rows share it, nothing is fixed
        fd = FD(A(0), A(1))
        assert count_redundant(city_relation, fd) == 0

    def test_cluster_sizes(self, city_relation):
        # zip -> city: clusters {ann,bob} and {dan,eve} -> 4 occurrences
        fd = FD(A(1), A(2))
        assert count_redundant(city_relation, fd) == 4

    def test_multi_rhs_counts_per_attribute(self, city_relation):
        fd = FD(A(1), A(2, 3))
        assert count_redundant(city_relation, fd) == 8

    def test_duplicate_rows_counted(self, duplicate_relation):
        # k -> g: the duplicated key rows form a cluster of 2
        fd = FD(A(0), A(1))
        assert count_redundant(duplicate_relation, fd) == 2

    def test_cache_shared(self, city_relation):
        cache = PartitionCache(city_relation)
        fd = FD(A(1), A(2))
        assert count_redundant(city_relation, fd, cache=cache) == 4
        assert count_redundant(city_relation, fd, cache=cache) == 4


class TestNullPolicies:
    def make(self):
        # maybe: NULL,NULL,v,v  tag: x,x,y,y  -> maybe->tag has clusters
        rows = [
            ("a", NULL, "x"),
            ("b", NULL, NULL),
            ("c", "v", "y"),
            ("d", "v", "y"),
        ]
        return Relation.from_rows(rows, ["id", "maybe", "tag"])

    def test_include_counts_nulls(self):
        rel = self.make()
        fd = FD(A(1), A(2))
        assert count_redundant(rel, fd, NullPolicy.INCLUDE) == 4

    def test_exclude_rhs_drops_null_values(self):
        rel = self.make()
        fd = FD(A(1), A(2))
        # row 1's tag is NULL -> excluded
        assert count_redundant(rel, fd, NullPolicy.EXCLUDE_RHS) == 3

    def test_exclude_lhs_rhs_drops_null_witnesses(self):
        rel = self.make()
        fd = FD(A(1), A(2))
        # rows 0,1 have NULL maybe -> dropped from the cluster
        assert count_redundant(rel, fd, NullPolicy.EXCLUDE_LHS_RHS) == 2

    def test_exclude_lhs_rhs_shrinks_cluster_below_two(self):
        rows = [
            ("a", NULL, "x"),
            ("b", "v", "x"),
            ("c", "v", "x"),
        ]
        rel = Relation.from_rows(rows, ["id", "lhs", "rhs"])
        # under EQ NULL is its own value: cluster {a} alone is stripped,
        # cluster {b,c} stays
        fd = FD(A(1), A(2))
        assert count_redundant(rel, fd, NullPolicy.EXCLUDE_LHS_RHS) == 2

    def test_empty_lhs_with_null_policy(self):
        rel = self.make()
        fd = FD(attrset.EMPTY, A(2))
        assert count_redundant(rel, fd, NullPolicy.INCLUDE) == 4
        assert count_redundant(rel, fd, NullPolicy.EXCLUDE_RHS) == 3
        assert count_redundant(rel, fd, NullPolicy.EXCLUDE_LHS_RHS) == 3


class TestRedundancyPositions:
    def test_union_not_double_counted(self, city_relation):
        cover = [FD(A(1), A(2)), FD(attrset.EMPTY, A(3))]
        positions = redundancy_positions(city_relation, cover)
        # zip->city marks 4 city cells; ∅->state marks 6 state cells
        assert positions.sum() == 10
        assert positions[:, 2].sum() == 4
        assert positions[:, 3].sum() == 6

    def test_overlapping_fds_count_once(self, city_relation):
        cover = [FD(A(1), A(2)), FD(A(0, 1), A(2))]
        # second FD's positions are a subset of the first's
        positions = redundancy_positions(city_relation, cover)
        assert positions.sum() == 4

    def test_shape(self, city_relation):
        positions = redundancy_positions(city_relation, [])
        assert positions.shape == (6, 4)
        assert positions.sum() == 0


class TestDatasetRedundancy:
    def test_report_fields(self, city_relation):
        cover = FDSet([FD(A(1), A(2)), FD(attrset.EMPTY, A(3))])
        report = dataset_redundancy(city_relation, cover)
        assert report.n_values == 24
        assert report.red_including_null == 10
        assert report.red_excluding_null == 10  # no nulls present
        assert abs(report.red_including_percent - 100 * 10 / 24) < 1e-9
        assert report.seconds >= 0

    def test_null_exclusion(self):
        rows = [("a", NULL), ("b", NULL)]
        rel = Relation.from_rows(rows, ["x", "y"])
        cover = FDSet([FD(attrset.EMPTY, A(1))])
        report = dataset_redundancy(rel, cover)
        assert report.red_including_null == 2
        assert report.red_excluding_null == 0

    def test_empty_cover(self, city_relation):
        report = dataset_redundancy(city_relation, FDSet())
        assert report.red_including_null == 0
        assert report.red_percent == 0.0


class TestBruteForceEquivalence:
    @settings(deadline=None, max_examples=20)
    @given(seed=st.integers(0, 300))
    def test_matches_definition(self, seed):
        """A position is redundant iff another row shares its LHS values."""
        rel = random_relation(20, 4, domain_sizes=3, null_rate=0.15, seed=seed)
        fd = FD(A(0, 1), A(2))
        matrix = rel.matrix()
        expected = 0
        for i in range(rel.n_rows):
            if any(
                j != i
                and matrix[j][0] == matrix[i][0]
                and matrix[j][1] == matrix[i][1]
                for j in range(rel.n_rows)
            ):
                expected += 1
        assert count_redundant(rel, fd, NullPolicy.INCLUDE) == expected
