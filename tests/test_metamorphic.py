"""Metamorphic properties of FD discovery.

These tests assert how the discovered cover must (not) change under
semantics-preserving transformations of the input — strong sanity
checks that need no oracle.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import DHyFD
from repro.datasets.synthetic import random_relation
from repro.relational import attrset
from repro.relational.fd import FD, FDSet
from repro.relational.relation import Relation

algo = DHyFD()


def discover(relation):
    return algo.discover(relation).fds


def rebuild(rows, schema=None, semantics="eq"):
    return Relation.from_rows(rows, schema, semantics)


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 500))
def test_duplicate_rows_change_nothing(seed):
    rel = random_relation(25, 4, domain_sizes=3, seed=seed)
    rows = list(rel.iter_rows())
    duplicated = rebuild(rows + rows[:7])
    assert discover(duplicated) == discover(rel)


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 500))
def test_row_permutation_changes_nothing(seed):
    rel = random_relation(25, 4, domain_sizes=3, seed=seed)
    rows = list(rel.iter_rows())
    random.Random(seed).shuffle(rows)
    assert discover(rebuild(rows)) == discover(rel)


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 500))
def test_value_renaming_changes_nothing(seed):
    """DIIS invariance: bijectively renaming a column's values must not
    affect which FDs hold."""
    rel = random_relation(25, 4, domain_sizes=3, seed=seed)
    rows = [
        tuple(f"renamed::{value}" if col == 1 else value
              for col, value in enumerate(row))
        for row in rel.iter_rows()
    ]
    assert discover(rebuild(rows)) == discover(rel)


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 500))
def test_adding_constant_column(seed):
    """Appending a constant column adds exactly ∅ -> new plus nothing:
    existing FDs keep holding and the new column determines nothing new."""
    rel = random_relation(20, 3, domain_sizes=3, seed=seed)
    rows = [tuple(row) + ("fixed",) for row in rel.iter_rows()]
    extended = discover(rebuild(rows))
    original = discover(rel)
    assert FD(attrset.EMPTY, attrset.singleton(3)) in extended
    # every original FD still present
    for fd in original:
        assert fd in extended
    # no FD has the constant column on a (minimal) LHS
    for fd in extended:
        assert not attrset.contains(fd.lhs, 3)


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 500))
def test_adding_key_column(seed):
    """Appending a unique column adds key FDs and breaks nothing."""
    rel = random_relation(20, 3, domain_sizes=3, seed=seed)
    rows = [tuple(row) + (f"id{i}",) for i, row in enumerate(rel.iter_rows())]
    extended = discover(rebuild(rows))
    original = discover(rel)
    for attr in range(3):
        assert FD(attrset.singleton(3), attrset.singleton(attr)) in extended
    for fd in original:
        assert fd in extended


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 500))
def test_column_projection_restriction(seed):
    """FDs among a column subset are exactly the original FDs restricted
    to that subset (our projection keeps duplicate rows)."""
    rel = random_relation(25, 5, domain_sizes=3, seed=seed)
    projected = rel.project_columns([0, 1, 2])
    sub_fds = discover(projected)
    full_fds = discover(rel)
    subset_mask = attrset.from_attrs([0, 1, 2])
    restricted = FDSet(
        fd for fd in full_fds
        if attrset.is_subset(fd.lhs | fd.rhs, subset_mask)
    )
    assert sub_fds == restricted


@settings(deadline=None, max_examples=10)
@given(seed=st.integers(0, 500))
def test_row_fragment_preserves_validity(seed):
    """Every FD of the full relation holds on any row fragment (fewer
    rows can only remove violations)."""
    from repro.core.validation import check_fd

    rel = random_relation(30, 4, domain_sizes=3, seed=seed)
    fragment = rel.head(12)
    for fd in discover(rel):
        assert check_fd(fragment, fd.lhs, fd.rhs)
