"""Unit tests for the Relation data model."""

from __future__ import annotations

import pytest

from repro.relational import attrset
from repro.relational.null import NULL, NullSemantics
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema, SchemaError


class TestConstruction:
    def test_from_rows_shapes(self, city_relation):
        assert city_relation.n_rows == 6
        assert city_relation.n_cols == 4
        assert city_relation.n_values == 24

    def test_from_rows_anonymous_schema(self):
        rel = Relation.from_rows([("a", "b")])
        assert rel.schema.names == ["col0", "col1"]

    def test_from_rows_list_schema(self):
        rel = Relation.from_rows([("a",)], ["only"])
        assert rel.schema.names == ["only"]

    def test_ragged_rows_rejected(self):
        with pytest.raises(SchemaError):
            Relation.from_rows([("a", "b"), ("c",)], ["x", "y"])

    def test_from_columns(self):
        rel = Relation.from_columns({"a": [1, 2], "b": ["x", "y"]})
        assert rel.n_rows == 2
        assert rel.schema.names == ["a", "b"]

    def test_from_columns_length_mismatch(self):
        with pytest.raises(SchemaError):
            Relation.from_columns({"a": [1], "b": [1, 2]})

    def test_semantics_parse_string(self):
        rel = Relation.from_rows([("a",)], semantics="neq")
        assert rel.semantics is NullSemantics.NEQ


class TestAccessors:
    def test_value_roundtrip(self, city_relation):
        assert city_relation.value(0, 0) == "ann"
        assert city_relation.value(3, 2) == "c2"

    def test_null_value(self, null_relation):
        assert null_relation.value(0, 1) is NULL

    def test_row_values(self, city_relation):
        assert city_relation.row_values(5) == ("fay", "z4", "c3", "nc")

    def test_iter_rows(self, city_relation):
        rows = list(city_relation.iter_rows())
        assert len(rows) == 6
        assert rows[0] == ("ann", "z1", "c1", "nc")

    def test_matrix_shape_and_consistency(self, city_relation):
        matrix = city_relation.matrix()
        assert matrix.shape == (6, 4)
        # constant column -> single code
        assert len(set(matrix[:, 3].tolist())) == 1

    def test_null_count(self, null_relation):
        assert null_relation.null_count() == 2

    def test_len(self, city_relation):
        assert len(city_relation) == 6

    def test_cardinality(self, city_relation):
        assert city_relation.cardinality(0) == 6  # names unique
        assert city_relation.cardinality(3) == 1  # constant


class TestAgreeSets:
    def test_agree_set(self, city_relation):
        # ann/bob share zip, city, state but not name
        mask = city_relation.agree_set(0, 1)
        assert attrset.to_list(mask) == [1, 2, 3]

    def test_agree_set_disjoint_rows(self, city_relation):
        # ann vs dan agree only on state
        assert attrset.to_list(city_relation.agree_set(0, 3)) == [3]

    def test_agree_set_null_eq(self, null_relation):
        # rows 0 and 1: maybe both NULL (equal under EQ), tag equal
        mask = null_relation.agree_set(0, 1)
        assert attrset.to_list(mask) == [1, 2]

    def test_agree_set_null_neq(self, null_relation):
        rel = null_relation.with_semantics("neq")
        mask = rel.agree_set(0, 1)
        assert attrset.to_list(mask) == [2]


class TestFragments:
    def test_project_rows(self, city_relation):
        frag = city_relation.project_rows([0, 1, 2])
        assert frag.n_rows == 3
        assert frag.row_values(2) == ("cat", "z2", "c1", "nc")

    def test_project_rows_reencodes_densely(self, city_relation):
        frag = city_relation.project_rows([4, 5])
        for attr in range(frag.n_cols):
            codes = frag.codes(attr)
            assert codes.max() < frag.cardinality(attr)

    def test_head(self, city_relation):
        assert city_relation.head(2).n_rows == 2
        assert city_relation.head(100).n_rows == 6

    def test_project_columns(self, city_relation):
        frag = city_relation.project_columns(["city", "zip"])
        assert frag.schema.names == ["city", "zip"]
        assert frag.row_values(0) == ("c1", "z1")

    def test_project_rows_preserves_nulls(self, null_relation):
        frag = null_relation.project_rows([0, 2])
        assert frag.value(0, 1) is NULL
        assert frag.value(1, 1) == "v"


class TestSemanticsConversion:
    def test_with_semantics_identity(self, null_relation):
        assert null_relation.with_semantics("eq") is null_relation

    def test_with_semantics_changes_codes(self, null_relation):
        neq = null_relation.with_semantics("neq")
        assert neq.codes(1)[0] != neq.codes(1)[1]
        # values survive the round trip
        assert list(neq.iter_rows()) == list(null_relation.iter_rows())

    def test_with_semantics_back(self, null_relation):
        back = null_relation.with_semantics("neq").with_semantics("eq")
        assert list(back.iter_rows()) == list(null_relation.iter_rows())
        assert back.codes(1)[0] == back.codes(1)[1]


class TestFingerprint:
    ROWS = [
        ("ann", "z1", "c1"),
        ("bob", "z1", "c1"),
        ("cat", "z2", NULL),
    ]
    NAMES = ["name", "zip", "city"]

    def make(self, rows=None, names=None, semantics="eq"):
        return Relation.from_rows(
            rows if rows is not None else self.ROWS,
            RelationSchema(names or self.NAMES),
            semantics=semantics,
        )

    def test_equal_data_equal_fingerprint(self):
        assert self.make().fingerprint() == self.make().fingerprint()

    def test_fingerprint_is_hex_sha256(self):
        digest = self.make().fingerprint()
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex

    def test_cached_after_first_call(self):
        relation = self.make()
        assert relation.fingerprint() is relation.fingerprint()

    def test_cell_change_changes_fingerprint(self):
        changed = [list(row) for row in self.ROWS]
        changed[2][1] = "z9"
        assert self.make().fingerprint() != self.make(rows=changed).fingerprint()

    def test_cell_change_same_code_matrix_changes_fingerprint(self):
        # "bob" -> "rob" keeps the DIIS codes identical (same positions,
        # same cardinality) but the decoded content differs.
        changed = [list(row) for row in self.ROWS]
        changed[1][0] = "rob"
        assert self.make().fingerprint() != self.make(rows=changed).fingerprint()

    def test_null_flip_changes_fingerprint(self):
        changed = [list(row) for row in self.ROWS]
        changed[2][2] = "c9"
        assert self.make().fingerprint() != self.make(rows=changed).fingerprint()

    def test_semantics_changes_fingerprint(self):
        assert (
            self.make().fingerprint()
            != self.make(semantics="neq").fingerprint()
        )

    def test_column_rename_changes_fingerprint(self):
        renamed = self.make(names=["name", "zip", "town"])
        assert self.make().fingerprint() != renamed.fingerprint()

    def test_row_order_sensitive(self):
        # Documented behaviour: the fingerprint is a cheap single pass,
        # so a reordered load is a distinct dataset.
        reordered = [self.ROWS[1], self.ROWS[0], self.ROWS[2]]
        assert self.make().fingerprint() != self.make(rows=reordered).fingerprint()

    def test_append_changes_fingerprint(self):
        relation = self.make()
        appended = relation.append_rows([("dan", "z3", "c2")])
        assert relation.fingerprint() != appended.fingerprint()
