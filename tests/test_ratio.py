"""Unit tests for the efficiency–inefficiency ratio (paper §IV-G)."""

from __future__ import annotations

import math

from repro.core.ratio import DEFAULT_RATIO_THRESHOLD, LevelDecision


def decision(**kwargs):
    defaults = dict(
        level=2, total_candidates=10, valid_fds=5, reusable_nodes=2, fds_above=10
    )
    defaults.update(kwargs)
    return LevelDecision(**defaults)


class TestMeasures:
    def test_paper_example5_left_tree(self):
        """Level 2, 1 FD-node all valid, 2 reusable nodes, 5 FDs above."""
        d = LevelDecision(
            level=2, total_candidates=1, valid_fds=1, reusable_nodes=2, fds_above=5
        )
        assert d.efficiency == 1.0
        assert d.inefficiency == 2 / 5
        assert d.ratio == 2.5

    def test_paper_example5_right_tree(self):
        """Level 3: 1 of 2 FDs valid, 2 reusable nodes, 3 FDs above."""
        d = LevelDecision(
            level=3, total_candidates=2, valid_fds=1, reusable_nodes=2, fds_above=3
        )
        assert d.efficiency == 0.5
        assert d.inefficiency == 2 / 3
        assert math.isclose(d.ratio, 0.75)

    def test_zero_candidates(self):
        d = decision(total_candidates=0, valid_fds=0)
        assert d.efficiency == 0.0
        assert d.ratio == 0.0

    def test_nothing_above_is_maximal_inefficiency(self):
        # reusable nodes exist but no FD above could ever consult the
        # refined partitions: inefficiency is unbounded, ratio pinned 0.
        d = decision(fds_above=0)
        assert d.inefficiency == math.inf
        assert d.ratio == 0.0

    def test_nothing_above_no_reusables(self):
        d = decision(fds_above=0, reusable_nodes=0)
        assert d.inefficiency == 0.0
        assert d.ratio == 0.0

    def test_zero_efficiency_zero_ratio(self):
        d = decision(valid_fds=0, fds_above=0)
        assert d.ratio == 0.0


class TestShouldUpdate:
    def test_never_at_level_one(self):
        d = decision(level=1, valid_fds=10, total_candidates=10, fds_above=1,
                     reusable_nodes=1)
        assert not d.should_update()

    def test_updates_above_threshold(self):
        # efficiency 1.0, inefficiency 0.1 -> ratio 10 > 3
        d = decision(valid_fds=10, total_candidates=10, reusable_nodes=1,
                     fds_above=10)
        assert d.should_update()

    def test_no_update_below_threshold(self):
        d = LevelDecision(
            level=3, total_candidates=2, valid_fds=1, reusable_nodes=2, fds_above=3
        )
        assert not d.should_update()  # ratio 0.75 < 3

    def test_no_update_without_reusables(self):
        d = decision(reusable_nodes=0, fds_above=0, valid_fds=10)
        assert not d.should_update()

    def test_no_update_when_nothing_above_regression(self):
        # Regression: fds_above == 0 with reusable nodes used to yield
        # ratio == inf, forcing a refresh that could never pay off.
        d = LevelDecision(
            level=3, total_candidates=10, valid_fds=5, reusable_nodes=4,
            fds_above=0,
        )
        assert d.ratio == 0.0
        assert not d.should_update()

    def test_custom_threshold(self):
        d = LevelDecision(
            level=2, total_candidates=1, valid_fds=1, reusable_nodes=2, fds_above=5
        )
        assert d.should_update(threshold=2.0)  # ratio 2.5
        assert not d.should_update(threshold=2.5)

    def test_default_threshold_is_papers(self):
        assert DEFAULT_RATIO_THRESHOLD == 3.0
