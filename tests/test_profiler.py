"""Unit tests for the high-level profiling API."""

from __future__ import annotations

import pytest

from repro.covers.implication import equivalent
from repro.profiling import profile
from repro.relational.null import NullSemantics


class TestProfile:
    def test_full_profile(self, city_relation):
        outcome = profile(city_relation)
        assert outcome.discovery.fd_count >= 3
        assert len(outcome.canonical) <= outcome.discovery.fd_count
        assert outcome.ranking is not None
        assert outcome.redundancy is not None
        assert equivalent(outcome.left_reduced, outcome.canonical)

    def test_algorithm_choice(self, city_relation):
        outcome = profile(city_relation, algorithm="tane")
        assert outcome.discovery.algorithm == "tane"

    def test_rank_skipped(self, city_relation):
        outcome = profile(city_relation, rank=False)
        assert outcome.ranking is None
        assert outcome.redundancy is None

    def test_null_semantics_override(self, null_relation):
        outcome = profile(null_relation, null_semantics="neq")
        assert outcome.relation.semantics is NullSemantics.NEQ

    def test_summary_text(self, city_relation):
        outcome = profile(city_relation)
        text = outcome.summary()
        assert "left-reduced cover" in text
        assert "canonical cover" in text
        assert "top-ranked FD" in text

    def test_summary_without_ranking(self, city_relation):
        outcome = profile(city_relation, rank=False)
        text = outcome.summary()
        assert "redundancy" not in text

    def test_unknown_algorithm(self, city_relation):
        with pytest.raises(ValueError):
            profile(city_relation, algorithm="bogus")

    def test_kwargs_forwarded(self, city_relation):
        outcome = profile(city_relation, ratio_threshold=9.9)
        assert outcome.discovery.fd_count >= 3
