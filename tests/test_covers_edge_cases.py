"""Edge-case tests for covers and implication (cycles, empty LHSs)."""

from __future__ import annotations

from repro.covers.canonical import (
    canonical_cover,
    is_non_redundant,
    left_reduce,
    non_redundant_cover,
)
from repro.covers.implication import ImplicationEngine, closure, equivalent
from repro.relational import attrset
from repro.relational.fd import FD, FDSet


def A(*attrs):
    return attrset.from_attrs(attrs)


class TestCyclicFDs:
    def test_equivalence_cycle_cover(self):
        # 0 <-> 1 <-> 2 cycle: canonical cover keeps a spanning cycle
        fds = [
            FD(A(0), A(1)), FD(A(1), A(2)), FD(A(2), A(0)),
            FD(A(0), A(2)), FD(A(2), A(1)), FD(A(1), A(0)),
        ]
        cover = canonical_cover(fds)
        assert equivalent(fds, cover)
        assert is_non_redundant(list(cover.split()))
        assert 2 <= len(cover) <= 3

    def test_closure_through_cycle(self):
        fds = [FD(A(0), A(1)), FD(A(1), A(0)), FD(A(1), A(2))]
        assert closure(A(0), fds) == A(0, 1, 2)


class TestConstantFDs:
    def test_empty_lhs_absorbs_everything(self):
        # ∅ -> 1 makes any X -> 1 redundant
        fds = [FD(attrset.EMPTY, A(1)), FD(A(0), A(1))]
        cover = canonical_cover(fds)
        assert cover == FDSet([FD(attrset.EMPTY, A(1))])

    def test_left_reduce_to_empty_lhs(self):
        fds = [FD(attrset.EMPTY, A(1)), FD(A(0), A(1))]
        reduced = left_reduce(fds)
        assert FD(attrset.EMPTY, A(1)) in reduced
        assert FD(A(0), A(1)) not in reduced

    def test_constant_chain(self):
        # ∅ -> 0, 0 -> 1: canonical merges to ∅ -> 0,1
        fds = [FD(attrset.EMPTY, A(0)), FD(A(0), A(1))]
        cover = canonical_cover(fds, assume_left_reduced=False)
        assert cover == FDSet([FD(attrset.EMPTY, A(0, 1))])


class TestEngineReuse:
    def test_exclude_does_not_mutate(self):
        fds = [FD(A(0), A(1)), FD(A(1), A(2))]
        engine = ImplicationEngine(fds)
        engine.closure(A(0), exclude=0)
        # engine state unchanged by exclusion
        assert engine.closure(A(0)) == A(0, 1, 2)

    def test_interleaved_remove_and_closure(self):
        fds = [FD(A(0), A(1)), FD(A(1), A(2)), FD(A(0), A(2))]
        engine = ImplicationEngine(fds)
        engine.remove(2)
        assert engine.closure(A(0)) == A(0, 1, 2)  # still via transitivity
        engine.remove(1)
        assert engine.closure(A(0)) == A(0, 1)
        engine.restore(1)
        assert engine.closure(A(0)) == A(0, 1, 2)


class TestNonRedundantDeterminism:
    def test_same_input_same_output(self):
        fds = [
            FD(A(0), A(1)), FD(A(1), A(2)), FD(A(0), A(2)),
            FD(A(2), A(3)), FD(A(0), A(3)),
        ]
        first = non_redundant_cover(fds)
        second = non_redundant_cover(list(reversed(fds)))
        assert first == second

    def test_large_redundant_family(self):
        # X -> A for every X containing 0: only {0} -> A survives
        fds = [FD(A(0) | extra, A(5)) for extra in
               [attrset.EMPTY, A(1), A(2), A(1, 2), A(3), A(1, 3)]]
        reduced = left_reduce(fds)
        cover = canonical_cover(reduced)
        assert cover == FDSet([FD(A(0), A(5))])
