"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.relational.null import NULL
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


@pytest.fixture
def city_relation() -> Relation:
    """A small hand-checkable relation.

    Facts (by column): zip -> city holds; city -> zip is violated
    (city c1 spans zips z1 and z2); state is constant; name is a key.
    """
    rows = [
        ("ann", "z1", "c1", "nc"),
        ("bob", "z1", "c1", "nc"),
        ("cat", "z2", "c1", "nc"),
        ("dan", "z3", "c2", "nc"),
        ("eve", "z3", "c2", "nc"),
        ("fay", "z4", "c3", "nc"),
    ]
    return Relation.from_rows(rows, RelationSchema(["name", "zip", "city", "state"]))


@pytest.fixture
def null_relation() -> Relation:
    """A relation with null markers for semantics tests."""
    rows = [
        ("a", NULL, "x"),
        ("b", NULL, "x"),
        ("c", "v", "y"),
        ("d", "v", "y"),
    ]
    return Relation.from_rows(rows, RelationSchema(["id", "maybe", "tag"]))


@pytest.fixture
def duplicate_relation() -> Relation:
    """Contains exact duplicate rows (a multiset relation)."""
    rows = [
        ("1", "a", "p"),
        ("1", "a", "p"),
        ("2", "b", "p"),
        ("3", "a", "q"),
    ]
    return Relation.from_rows(rows, RelationSchema(["k", "g", "h"]))
