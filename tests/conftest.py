"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro import memplane
from repro.datasets.synthetic import random_relation
from repro.relational.null import NULL, NullSemantics
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema


def make_random_relation(seed: int, semantics=NullSemantics.EQ) -> Relation:
    """A seeded random relation with a randomized regime.

    Shape, per-column cardinality, and null rate are all drawn from the
    seed, so a range of seeds covers wide/narrow, dense/sparse, and
    null-heavy relations.  Used by the kernel differential tests to
    cross-check the python and numpy backends.
    """
    rng = random.Random(seed)
    n_rows = rng.choice([2, 3, 10, 40, 120])
    n_cols = rng.randint(1, 6)
    domains = [rng.choice([1, 2, 3, 8, n_rows]) for _ in range(n_cols)]
    null_rate = rng.choice([0.0, 0.0, 0.1, 0.4])
    return random_relation(
        n_rows,
        n_cols,
        domain_sizes=domains,
        null_rate=null_rate,
        seed=seed,
        semantics=semantics,
    )


@pytest.fixture(autouse=True)
def _memplane_isolation():
    """Drop shared partition tiers between tests.

    Fixture relations are seeded, so the same content fingerprint
    recurs across tests — without this, one test's warm tier changes
    another test's kernel-call and cache-counter observations.  The
    arena is left alone: leases are scoped to executors and identical
    bytes are identical bytes.
    """
    yield
    memplane.reset_tiers()


@pytest.fixture
def random_relation_factory():
    """Factory fixture wrapping :func:`make_random_relation`."""
    return make_random_relation


@pytest.fixture
def city_relation() -> Relation:
    """A small hand-checkable relation.

    Facts (by column): zip -> city holds; city -> zip is violated
    (city c1 spans zips z1 and z2); state is constant; name is a key.
    """
    rows = [
        ("ann", "z1", "c1", "nc"),
        ("bob", "z1", "c1", "nc"),
        ("cat", "z2", "c1", "nc"),
        ("dan", "z3", "c2", "nc"),
        ("eve", "z3", "c2", "nc"),
        ("fay", "z4", "c3", "nc"),
    ]
    return Relation.from_rows(rows, RelationSchema(["name", "zip", "city", "state"]))


@pytest.fixture
def null_relation() -> Relation:
    """A relation with null markers for semantics tests."""
    rows = [
        ("a", NULL, "x"),
        ("b", NULL, "x"),
        ("c", "v", "y"),
        ("d", "v", "y"),
    ]
    return Relation.from_rows(rows, RelationSchema(["id", "maybe", "tag"]))


@pytest.fixture
def duplicate_relation() -> Relation:
    """Contains exact duplicate rows (a multiset relation)."""
    rows = [
        ("1", "a", "p"),
        ("1", "a", "p"),
        ("2", "b", "p"),
        ("3", "a", "q"),
    ]
    return Relation.from_rows(rows, RelationSchema(["k", "g", "h"]))
