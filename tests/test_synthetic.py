"""Unit tests for the generic synthetic generators."""

from __future__ import annotations

import pytest

from repro.core.validation import check_fd
from repro.datasets.synthetic import (
    constant_column_relation,
    duplicate_template_relation,
    fd_reduced_relation,
    fd_rich_relation,
    planted_fd_relation,
    random_relation,
    zipf_relation,
)
from repro.relational import attrset
from repro.relational.null import NullSemantics


class TestRandomRelation:
    def test_shape(self):
        rel = random_relation(20, 4, seed=0)
        assert rel.n_rows == 20
        assert rel.n_cols == 4

    def test_deterministic(self):
        a = random_relation(15, 3, seed=42)
        b = random_relation(15, 3, seed=42)
        assert list(a.iter_rows()) == list(b.iter_rows())

    def test_seed_changes_output(self):
        a = random_relation(15, 3, seed=1)
        b = random_relation(15, 3, seed=2)
        assert list(a.iter_rows()) != list(b.iter_rows())

    def test_domain_bound(self):
        rel = random_relation(50, 2, domain_sizes=3, seed=0)
        assert rel.cardinality(0) <= 3

    def test_per_column_domains(self):
        rel = random_relation(60, 2, domain_sizes=[2, 30], seed=0)
        assert rel.cardinality(0) <= 2
        assert rel.cardinality(1) > 2

    def test_wrong_domain_count_rejected(self):
        with pytest.raises(ValueError):
            random_relation(10, 3, domain_sizes=[2, 2])

    def test_null_rate(self):
        rel = random_relation(100, 3, null_rate=0.5, seed=0)
        assert 50 < rel.null_count() < 250

    def test_semantics(self):
        rel = random_relation(10, 2, semantics="neq", seed=0)
        assert rel.semantics is NullSemantics.NEQ


class TestPlantedFdRelation:
    def test_planted_fds_hold(self):
        rel = planted_fd_relation(80, 5, [([0, 1], 2), ([3], 4)], seed=1)
        assert check_fd(rel, attrset.from_attrs([0, 1]), attrset.singleton(2))
        assert check_fd(rel, attrset.singleton(3), attrset.singleton(4))

    def test_noise_breaks_fd(self):
        rel = planted_fd_relation(
            200, 3, [([0], 1)], noise_rate=0.5, base_domain=4, seed=1
        )
        assert not check_fd(rel, attrset.singleton(0), attrset.singleton(1))

    def test_double_derivation_rejected(self):
        with pytest.raises(ValueError):
            planted_fd_relation(10, 4, [([0], 2), ([1], 2)])

    def test_self_derivation_rejected(self):
        with pytest.raises(ValueError):
            planted_fd_relation(10, 4, [([0, 2], 2)])

    def test_deterministic(self):
        a = planted_fd_relation(30, 4, [([0], 1)], seed=9)
        b = planted_fd_relation(30, 4, [([0], 1)], seed=9)
        assert list(a.iter_rows()) == list(b.iter_rows())


class TestFdReducedRelation:
    def test_planted_lhs_size(self):
        rel = fd_reduced_relation(150, n_cols=12, n_planted=4, lhs_size=3, seed=0)
        assert rel.n_cols == 12
        # derived columns are the last n_planted ones; each has a valid
        # 3-attribute determinant among the base columns
        from repro.algorithms import DHyFD

        fds = DHyFD().discover(rel).fds
        for rhs in range(8, 12):
            hits = [
                fd for fd in fds
                if attrset.to_list(fd.rhs) == [rhs] and fd.lhs_size <= 3
            ]
            assert hits, f"no small-LHS FD found for derived column {rhs}"

    def test_too_few_base_columns_rejected(self):
        with pytest.raises(ValueError):
            fd_reduced_relation(50, n_cols=5, n_planted=4, lhs_size=3)


class TestOtherGenerators:
    def test_fd_rich_small_domains(self):
        rel = fd_rich_relation(30, 6, domain_size=2, seed=0)
        assert all(rel.cardinality(c) <= 2 for c in range(6))

    def test_zipf_skew(self):
        rel = zipf_relation(300, 2, [10, 10], skew=2.0, seed=0)
        codes = rel.codes(0)
        import numpy as np

        counts = np.bincount(codes)
        assert counts.max() > 2 * counts.mean()

    def test_constant_columns(self):
        rel = constant_column_relation(20, 4, [0, 2], seed=0)
        assert rel.cardinality(0) == 1
        assert rel.cardinality(2) == 1
        assert rel.cardinality(1) > 1

    def test_duplicate_templates(self):
        rel = duplicate_template_relation(50, 4, 3, mutation_rate=0.0, seed=0)
        distinct = {tuple(row) for row in rel.iter_rows()}
        assert len(distinct) <= 3
