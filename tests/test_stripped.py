"""Unit tests for stripped partitions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import random_relation
from repro.partitions.stripped import StrippedPartition, refine_cluster
from repro.relational import attrset
from repro.relational.relation import Relation


def clusters_as_sets(partition):
    return {frozenset(c) for c in partition.clusters}


class TestConstruction:
    def test_universal(self, city_relation):
        universal = StrippedPartition.universal(city_relation)
        assert universal.num_clusters == 1
        assert universal.size == 6
        assert universal.attrs == attrset.EMPTY

    def test_universal_single_row(self):
        rel = Relation.from_rows([("a",)])
        assert StrippedPartition.universal(rel).num_clusters == 0

    def test_for_attribute_strips_singletons(self, city_relation):
        # names are unique -> everything stripped
        partition = StrippedPartition.for_attribute(city_relation, 0)
        assert partition.num_clusters == 0
        assert partition.is_key()

    def test_for_attribute_groups(self, city_relation):
        # zip: z1 has 2 rows, z3 has 2 rows, z2/z4 stripped
        partition = StrippedPartition.for_attribute(city_relation, 1)
        assert clusters_as_sets(partition) == {frozenset({0, 1}), frozenset({3, 4})}

    def test_for_attrs_multi(self, city_relation):
        partition = StrippedPartition.for_attrs(
            city_relation, attrset.from_attrs([1, 2])
        )
        assert clusters_as_sets(partition) == {frozenset({0, 1}), frozenset({3, 4})}

    def test_for_attrs_empty_is_universal(self, city_relation):
        partition = StrippedPartition.for_attrs(city_relation, attrset.EMPTY)
        assert partition.size == 6


class TestMeasures:
    def test_cardinality_and_size(self, city_relation):
        partition = StrippedPartition.for_attribute(city_relation, 2)
        # city: c1 x3, c2 x2, c3 stripped
        assert partition.num_clusters == 2
        assert partition.size == 5
        assert partition.error == 3

    def test_error_zero_iff_key(self, city_relation):
        assert StrippedPartition.for_attribute(city_relation, 0).error == 0
        assert StrippedPartition.for_attribute(city_relation, 3).error == 5

    def test_memory_bytes_positive(self, city_relation):
        partition = StrippedPartition.for_attribute(city_relation, 2)
        assert partition.memory_bytes() > 0

    def test_iter_and_len(self, city_relation):
        partition = StrippedPartition.for_attribute(city_relation, 1)
        assert len(partition) == 2
        assert sum(len(c) for c in partition) == partition.size


class TestRefinement:
    def test_refine_matches_direct(self, city_relation):
        base = StrippedPartition.for_attribute(city_relation, 2)
        refined = base.refine(city_relation, 1)
        direct = StrippedPartition.for_attrs(
            city_relation, attrset.from_attrs([1, 2])
        )
        assert clusters_as_sets(refined) == clusters_as_sets(direct)
        assert refined.attrs == attrset.from_attrs([1, 2])

    def test_refine_cluster_helper(self, city_relation):
        codes = city_relation.codes(1)
        split = refine_cluster(codes, [0, 1, 2])
        assert {frozenset(c) for c in split} == {frozenset({0, 1})}

    def test_refine_many(self, city_relation):
        base = StrippedPartition.universal(city_relation)
        refined = base.refine_many(city_relation, [1, 2])
        direct = StrippedPartition.for_attrs(
            city_relation, attrset.from_attrs([1, 2])
        )
        assert clusters_as_sets(refined) == clusters_as_sets(direct)


class TestIntersection:
    def test_intersect_matches_refinement(self, city_relation):
        zip_part = StrippedPartition.for_attribute(city_relation, 1)
        city_part = StrippedPartition.for_attribute(city_relation, 2)
        product = zip_part.intersect(city_part)
        direct = StrippedPartition.for_attrs(
            city_relation, attrset.from_attrs([1, 2])
        )
        assert clusters_as_sets(product) == clusters_as_sets(direct)
        assert product.attrs == attrset.from_attrs([1, 2])


class TestRefinesAttribute:
    def test_valid_fd(self, city_relation):
        zip_part = StrippedPartition.for_attribute(city_relation, 1)
        assert zip_part.refines_attribute(city_relation, 2)  # zip -> city
        assert zip_part.refines_attribute(city_relation, 3)  # zip -> state

    def test_invalid_fd(self, city_relation):
        city_part = StrippedPartition.for_attribute(city_relation, 2)
        assert not city_part.refines_attribute(city_relation, 1)  # city !-> zip


@settings(deadline=None, max_examples=25)
@given(
    seed=st.integers(0, 1000),
    n_rows=st.integers(2, 40),
    n_cols=st.integers(1, 5),
    attrs=st.sets(st.integers(0, 4), min_size=1, max_size=3),
)
def test_partition_invariants(seed, n_rows, n_cols, attrs):
    """Clusters are disjoint, all >= 2, and respect code equality."""
    attrs = {a % n_cols for a in attrs}
    rel = random_relation(n_rows, n_cols, domain_sizes=3, seed=seed)
    mask = attrset.from_attrs(attrs)
    partition = StrippedPartition.for_attrs(rel, mask)
    seen = set()
    matrix = rel.matrix()
    cols = sorted(attrs)
    for cluster in partition.clusters:
        assert len(cluster) >= 2
        assert not (set(cluster) & seen)
        seen |= set(cluster)
        first = [matrix[cluster[0]][c] for c in cols]
        for row in cluster:
            assert [matrix[row][c] for c in cols] == first
    # rows outside clusters are unique on the projection
    projections = {}
    for row in range(rel.n_rows):
        key = tuple(matrix[row][c] for c in cols)
        projections.setdefault(key, []).append(row)
    expected = {frozenset(v) for v in projections.values() if len(v) >= 2}
    assert {frozenset(c) for c in partition.clusters} == expected


@settings(deadline=None, max_examples=20)
@given(
    seed=st.integers(0, 1000),
    split=st.integers(0, 4),
)
def test_intersect_commutative(seed, split):
    rel = random_relation(30, 5, domain_sizes=3, seed=seed)
    left = StrippedPartition.for_attrs(rel, attrset.from_attrs([0, split % 5]))
    right = StrippedPartition.for_attrs(rel, attrset.from_attrs([(split + 1) % 5]))
    forward = left.intersect(right)
    backward = right.intersect(left)
    assert {frozenset(c) for c in forward.clusters} == {
        frozenset(c) for c in backward.clusters
    }
