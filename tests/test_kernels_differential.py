"""Differential tests: python vs numpy partition kernels.

Every kernel operation is cross-checked on seeded random relations
(regimes drawn in ``conftest.make_random_relation``) under both null
semantics, plus hand-built edge cases: the empty relation, a single
row, all-duplicate rows, and relations whose partitions are exclusively
single-row (stripped) clusters.  Both backends must return *identical*
structures — same cluster lists in the same canonical order, same agree
sets, same validation outcomes, and byte-identical FD covers from a
full DHyFD run.
"""

from __future__ import annotations

import random

import pytest

from repro.core.dhyfd import DHyFD
from repro.core.sampling import AgreeSetSampler, all_agree_sets
from repro.core.validation import validate_fd
from repro.partitions import kernels
from repro.partitions.stripped import StrippedPartition
from repro.relational import attrset
from repro.relational.null import NullSemantics
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema

from tests.conftest import make_random_relation

SEEDS = list(range(12))
SEMANTICS = [NullSemantics.EQ, NullSemantics.NEQ]


def edge_case_relations(semantics):
    """Empty, single-row, all-duplicate, and all-stripped relations."""
    schema3 = RelationSchema(["a", "b", "c"])
    return [
        Relation.from_rows([], schema3, semantics),
        Relation.from_rows([("x", "y", "z")], schema3, semantics),
        Relation.from_rows([("x", "y", "z")] * 5, schema3, semantics),
        # every column is a key: all partitions are empty (stripped)
        Relation.from_rows(
            [(f"k{i}", f"m{i}", f"n{i}") for i in range(6)], schema3, semantics
        ),
    ]


def both_backends(fn):
    """Run ``fn(backend)`` for both backends and return the results."""
    return fn("python"), fn("numpy")


@pytest.mark.parametrize("semantics", SEMANTICS)
@pytest.mark.parametrize("seed", SEEDS)
class TestPartitionKernels:
    def test_for_attrs_identical(self, seed, semantics):
        rel = make_random_relation(seed, semantics)
        rng = random.Random(seed + 1)
        for _ in range(4):
            mask = attrset.from_attrs(
                rng.sample(range(rel.n_cols), rng.randint(1, rel.n_cols))
            )
            py, np_ = both_backends(
                lambda b: StrippedPartition.for_attrs(rel, mask, backend=b)
            )
            assert py.clusters == np_.clusters
            assert py.attrs == np_.attrs

    def test_refine_identical(self, seed, semantics):
        rel = make_random_relation(seed, semantics)
        rng = random.Random(seed + 2)
        attr = rng.randrange(rel.n_cols)
        other = rng.randrange(rel.n_cols)
        base_py = StrippedPartition.for_attribute(rel, attr, backend="python")
        base_np = StrippedPartition.for_attribute(rel, attr, backend="numpy")
        assert base_py.clusters == base_np.clusters
        refined = both_backends(
            lambda b: (base_py if b == "python" else base_np).refine(
                rel, other, backend=b
            )
        )
        assert refined[0].clusters == refined[1].clusters

    def test_refine_many_identical(self, seed, semantics):
        rel = make_random_relation(seed, semantics)
        universal = StrippedPartition.universal(rel)
        attrs = list(range(rel.n_cols))
        py, np_ = both_backends(
            lambda b: universal.refine_many(rel, attrs, backend=b)
        )
        assert py.clusters == np_.clusters

    def test_intersect_identical(self, seed, semantics):
        rel = make_random_relation(seed, semantics)
        if rel.n_cols < 2:
            pytest.skip("needs two attributes")
        left_mask = attrset.singleton(0)
        right_mask = attrset.singleton(1)

        def product(backend):
            left = StrippedPartition.for_attrs(rel, left_mask, backend=backend)
            right = StrippedPartition.for_attrs(rel, right_mask, backend=backend)
            return left.intersect(right, backend=backend)

        py, np_ = both_backends(product)
        assert py.clusters == np_.clusters
        # and both match direct construction of the union partition
        direct = StrippedPartition.for_attrs(rel, left_mask | right_mask)
        assert {frozenset(c) for c in py.clusters} == {
            frozenset(c) for c in direct.clusters
        }

    def test_refines_attribute_identical(self, seed, semantics):
        rel = make_random_relation(seed, semantics)
        for lhs_attr in range(rel.n_cols):
            partition_py = StrippedPartition.for_attribute(
                rel, lhs_attr, backend="python"
            )
            for rhs_attr in range(rel.n_cols):
                py, np_ = both_backends(
                    lambda b: partition_py.refines_attribute(
                        rel, rhs_attr, backend=b
                    )
                )
                assert py == np_


@pytest.mark.parametrize("semantics", SEMANTICS)
@pytest.mark.parametrize("seed", SEEDS)
class TestAgreeSetKernels:
    def test_sample_round_identical(self, seed, semantics):
        rel = make_random_relation(seed, semantics)
        singletons = [
            StrippedPartition.for_attribute(rel, attr)
            for attr in range(rel.n_cols)
        ]

        def run(backend):
            sampler = AgreeSetSampler(rel, singletons, backend=backend)
            sets_a, stats_a = sampler.sample_round()
            sets_b, stats_b = sampler.sample_round()
            return sets_a, sets_b, stats_a.comparisons, stats_b.comparisons

        py, np_ = both_backends(run)
        assert py == np_

    def test_all_agree_sets_identical(self, seed, semantics):
        rel = make_random_relation(seed, semantics)
        py, np_ = both_backends(lambda b: all_agree_sets(rel, backend=b))
        assert py == np_

    def test_validate_fd_identical(self, seed, semantics):
        rel = make_random_relation(seed, semantics)
        if rel.n_cols < 2:
            pytest.skip("needs two attributes")
        rng = random.Random(seed + 3)
        lhs_attrs = rng.sample(range(rel.n_cols), rng.randint(1, rel.n_cols - 1))
        lhs = attrset.from_attrs(lhs_attrs)
        rhs = attrset.complement(lhs, rel.n_cols)
        start = attrset.singleton(lhs_attrs[0])

        def run(backend):
            partition = StrippedPartition.for_attrs(rel, start, backend=backend)
            outcome = validate_fd(rel, lhs, rhs, partition, backend=backend)
            return outcome.valid_rhs, outcome.non_fd_lhs, outcome.comparisons

        py, np_ = both_backends(run)
        assert py == np_


@pytest.mark.parametrize("semantics", SEMANTICS)
@pytest.mark.parametrize("seed", SEEDS)
def test_dhyfd_covers_identical(seed, semantics):
    """Full discovery produces byte-identical covers on both backends."""
    rel = make_random_relation(seed, semantics)
    py = DHyFD(backend="python").discover(rel)
    np_ = DHyFD(backend="numpy").discover(rel)
    assert py.fds == np_.fds
    assert py.format_fds() == np_.format_fds()


@pytest.mark.parametrize("semantics", SEMANTICS)
def test_edge_cases(semantics):
    """Empty, single-row, duplicate-only, and key-only relations."""
    for rel in edge_case_relations(semantics):
        mask = attrset.full_set(rel.n_cols)
        py, np_ = both_backends(
            lambda b: StrippedPartition.for_attrs(rel, mask, backend=b)
        )
        assert py.clusters == np_.clusters
        agree_py, agree_np = both_backends(lambda b: all_agree_sets(rel, b))
        assert agree_py == agree_np
        cover_py = DHyFD(backend="python").discover(rel).fds
        cover_np = DHyFD(backend="numpy").discover(rel).fds
        assert cover_py == cover_np


@pytest.mark.parametrize("semantics", SEMANTICS)
def test_single_row_clusters_strip_identically(semantics):
    """Partitions whose refinement leaves only singletons come back empty."""
    rel = Relation.from_rows(
        [("a", "1"), ("a", "2"), ("b", "3"), ("b", "4")],
        RelationSchema(["g", "u"]),
        semantics,
    )
    base = StrippedPartition.for_attribute(rel, 0)
    assert base.num_clusters == 2
    py, np_ = both_backends(lambda b: base.refine(rel, 1, backend=b))
    assert py.clusters == np_.clusters == []


def test_default_backend_round_trip():
    previous = kernels.get_default_backend()
    with kernels.use_backend("python"):
        assert kernels.get_default_backend() == "python"
    assert kernels.get_default_backend() == previous
    with pytest.raises(ValueError):
        kernels.resolve_backend("fortran")
