"""Small-surface tests: DiscoveryResult, Deadline, misc reprs."""

from __future__ import annotations

import time

import pytest

from repro.core.base import Deadline, TimeLimitExceeded
from repro.core.result import DiscoveryResult, DiscoveryStats
from repro.relational.fd import FD, FDSet
from repro.relational.schema import RelationSchema


class TestDiscoveryResult:
    def make(self):
        schema = RelationSchema(["a", "b", "c"])
        fds = FDSet([FD.of(["a"], "b", schema), FD.of(["a", "c"], "b", schema)])
        return DiscoveryResult(
            algorithm="test", schema=schema, fds=fds, elapsed_seconds=0.5
        )

    def test_counts(self):
        result = self.make()
        assert result.fd_count == 2
        assert result.attribute_occurrences == 2 + 3

    def test_format_fds_uses_names(self):
        result = self.make()
        formatted = result.format_fds()
        assert "a -> b" in formatted
        assert "a,c -> b" in formatted

    def test_repr(self):
        assert "test" in repr(self.make())
        assert "2 FDs" in repr(self.make())

    def test_default_stats(self):
        result = self.make()
        assert isinstance(result.stats, DiscoveryStats)
        assert result.stats.validations == 0


class TestDeadline:
    def test_none_never_raises(self):
        deadline = Deadline(None, "x")
        deadline.check()

    def test_expired_raises(self):
        deadline = Deadline(0.0, "algo")
        time.sleep(0.01)
        with pytest.raises(TimeLimitExceeded) as excinfo:
            deadline.check()
        assert excinfo.value.algorithm == "algo"

    def test_future_does_not_raise(self):
        Deadline(60.0, "x").check()


class TestReprs:
    def test_relation_repr(self, city_relation):
        assert "6 rows x 4 cols" in repr(city_relation)

    def test_partition_repr(self, city_relation):
        from repro.partitions.stripped import StrippedPartition

        partition = StrippedPartition.for_attribute(city_relation, 1)
        text = repr(partition)
        assert "|π|=2" in text

    def test_fdset_repr(self):
        assert "2 FDs" in repr(FDSet([FD.of([0], 1), FD.of([1], 2)]))

    def test_algorithm_repr(self):
        from repro.algorithms import TANE

        assert "TANE" in repr(TANE())
