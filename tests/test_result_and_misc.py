"""Small-surface tests: DiscoveryResult, Deadline, misc reprs."""

from __future__ import annotations

import time

import pytest

from repro.core.base import Deadline, TimeLimitExceeded
from repro.core.result import DiscoveryResult, DiscoveryStats
from repro.relational.fd import FD, FDSet
from repro.relational.schema import RelationSchema


class TestDiscoveryResult:
    def make(self):
        schema = RelationSchema(["a", "b", "c"])
        fds = FDSet([FD.of(["a"], "b", schema), FD.of(["a", "c"], "b", schema)])
        return DiscoveryResult(
            algorithm="test", schema=schema, fds=fds, elapsed_seconds=0.5
        )

    def test_counts(self):
        result = self.make()
        assert result.fd_count == 2
        assert result.attribute_occurrences == 2 + 3

    def test_format_fds_uses_names(self):
        result = self.make()
        formatted = result.format_fds()
        assert "a -> b" in formatted
        assert "a,c -> b" in formatted

    def test_repr(self):
        assert "test" in repr(self.make())
        assert "2 FDs" in repr(self.make())

    def test_default_stats(self):
        result = self.make()
        assert isinstance(result.stats, DiscoveryStats)
        assert result.stats.validations == 0


class TestDeadline:
    def test_none_never_raises(self):
        deadline = Deadline(None, "x")
        deadline.check()

    def test_expired_raises(self):
        deadline = Deadline(0.0, "algo")
        time.sleep(0.01)
        with pytest.raises(TimeLimitExceeded) as excinfo:
            deadline.check()
        assert excinfo.value.algorithm == "algo"

    def test_future_does_not_raise(self):
        Deadline(60.0, "x").check()


class TestReprs:
    def test_relation_repr(self, city_relation):
        assert "6 rows x 4 cols" in repr(city_relation)

    def test_partition_repr(self, city_relation):
        from repro.partitions.stripped import StrippedPartition

        partition = StrippedPartition.for_attribute(city_relation, 1)
        text = repr(partition)
        assert "|π|=2" in text

    def test_fdset_repr(self):
        assert "2 FDs" in repr(FDSet([FD.of([0], 1), FD.of([1], 2)]))

    def test_algorithm_repr(self):
        from repro.algorithms import TANE

        assert "TANE" in repr(TANE())


class TestResultJsonRoundTrip:
    def make_partial(self):
        schema = RelationSchema(["a", "b", "c"])
        fds = FDSet([FD.of(["a"], "b", schema)])
        unverified = FDSet([FD.of(["b", "c"], "a", schema)])
        stats = DiscoveryStats(validations=7, comparisons=3)
        stats.level_log.append({"level": 1.0, "ratio": 2.5})
        return DiscoveryResult(
            algorithm="dhyfd",
            schema=schema,
            fds=fds,
            elapsed_seconds=1.25,
            peak_memory_bytes=4096,
            stats=stats,
            completed=False,
            unverified=unverified,
            limit_reason="time",
        )

    def test_round_trip_full(self):
        result = self.make_partial()
        back = DiscoveryResult.from_json(result.to_json())
        assert back.algorithm == result.algorithm
        assert back.schema == result.schema
        assert back.fds == result.fds
        assert back.unverified == result.unverified
        assert back.elapsed_seconds == result.elapsed_seconds
        assert back.peak_memory_bytes == result.peak_memory_bytes
        assert back.completed is False
        assert back.limit_reason == "time"
        assert back.stats.validations == 7
        assert back.stats.level_log == [{"level": 1.0, "ratio": 2.5}]

    def test_round_trip_is_stable(self):
        result = self.make_partial()
        once = DiscoveryResult.from_json(result.to_json())
        assert once.to_json() == result.to_json()

    def test_embedded_cover_is_a_cover_document(self):
        import json

        from repro.relational.fd_io import cover_from_payload

        result = self.make_partial()
        payload = json.loads(result.to_json())
        fds = cover_from_payload(payload["cover"], result.schema)
        assert fds == result.fds

    def test_from_json_rejects_other_documents(self):
        with pytest.raises(ValueError):
            DiscoveryResult.from_json('{"format": "something-else"}')

    def test_from_json_rejects_future_versions(self):
        import json

        payload = json.loads(self.make_partial().to_json())
        payload["version"] = 999
        with pytest.raises(ValueError):
            DiscoveryResult.from_payload(payload)

    def test_unknown_stats_fields_ignored(self):
        import json

        payload = json.loads(self.make_partial().to_json())
        payload["stats"]["counter_from_the_future"] = 1
        back = DiscoveryResult.from_payload(payload)
        assert back.stats.validations == 7
