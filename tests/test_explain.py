"""Tests for redundancy explanations and violation listings."""

from __future__ import annotations

from repro.ranking.explain import (
    RedundancyWitness,
    explain_redundancy,
    violating_pairs,
)
from repro.relational import attrset
from repro.relational.fd import FD


def A(*attrs):
    return attrset.from_attrs(attrs)


class TestExplainRedundancy:
    def test_specific_row(self, city_relation):
        # zip -> city: ann (row 0) shares z1 with bob (row 1)
        witnesses = explain_redundancy(city_relation, FD(A(1), A(2)), row=0)
        assert len(witnesses) == 1
        w = witnesses[0]
        assert w.row == 0
        assert w.attr == 2
        assert w.value == "c1"
        assert w.witness_rows == (1,)

    def test_non_redundant_row_empty(self, city_relation):
        # fay (row 5) has a unique zip
        assert explain_redundancy(city_relation, FD(A(1), A(2)), row=5) == []

    def test_sample_mode_one_per_cluster(self, city_relation):
        witnesses = explain_redundancy(city_relation, FD(A(1), A(2)))
        assert len(witnesses) == 2  # clusters {ann,bob} and {dan,eve}

    def test_multi_rhs(self, city_relation):
        witnesses = explain_redundancy(city_relation, FD(A(1), A(2, 3)), row=0)
        assert {w.attr for w in witnesses} == {2, 3}

    def test_constant_fd_witnesses_everyone(self, city_relation):
        witnesses = explain_redundancy(
            city_relation, FD(attrset.EMPTY, A(3)), row=2, max_witnesses=10
        )
        assert witnesses[0].witness_rows == (0, 1, 3, 4, 5)

    def test_format(self, city_relation):
        witness = explain_redundancy(city_relation, FD(A(1), A(2)), row=0)[0]
        text = witness.format(city_relation)
        assert "city='c1'" in text
        assert "row 0" in text


class TestViolatingPairs:
    def test_valid_fd_no_pairs(self, city_relation):
        assert violating_pairs(city_relation, FD(A(1), A(2))) == []

    def test_invalid_fd_finds_pairs(self, city_relation):
        # city !-> zip: the c1 cluster spans z1, z1, z2
        pairs = violating_pairs(city_relation, FD(A(2), A(1)))
        assert pairs
        for left, right in pairs:
            assert city_relation.value(left, 2) == city_relation.value(right, 2)
            assert city_relation.value(left, 1) != city_relation.value(right, 1)

    def test_limit(self, city_relation):
        pairs = violating_pairs(city_relation, FD(attrset.EMPTY, A(0)), limit=2)
        assert len(pairs) == 2

    def test_sigma4_story(self):
        """The ncvoter dirty duplicate is exactly one violating pair."""
        from repro.datasets import ncvoter_like

        rel = ncvoter_like(300)
        voter = rel.schema.index_of("voter_id")
        street = rel.schema.index_of("street_address")
        pairs = violating_pairs(
            rel, FD(attrset.singleton(voter), attrset.singleton(street))
        )
        assert len(pairs) == 1
        left, right = pairs[0]
        assert rel.value(left, voter) == rel.value(right, voter)
