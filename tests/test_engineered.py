"""Unit tests for the exact-FD-control generator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import DHyFD
from repro.datasets.engineered import (
    EngineeringError,
    engineered_relation,
    expected_fds,
)
from repro.relational import attrset


def discovered_tuples(relation):
    fds = DHyFD().discover(relation).fds
    return {
        (tuple(attrset.to_list(fd.lhs)), attrset.to_list(fd.rhs)[0]) for fd in fds
    }


class TestExpectedFds:
    def test_planted_only(self):
        assert expected_fds(4, [], [([0, 1], 2)]) == [((0, 1), 2)]

    def test_key_expansion(self):
        got = expected_fds(4, [[0, 1]], [])
        assert got == [((0, 1), 2), ((0, 1), 3)]

    def test_combined_sorted_unique(self):
        got = expected_fds(4, [[0]], [([1], 2)])
        assert got == sorted(set(got))


class TestExactness:
    def test_planted_fd_only(self):
        rel = engineered_relation(120, 6, planted=[([0, 1], 2)], seed=3)
        assert discovered_tuples(rel) == {((0, 1), 2)}

    def test_key_only(self):
        rel = engineered_relation(150, 5, keys=[[0, 1]], seed=4)
        assert discovered_tuples(rel) == {((0, 1), 2), ((0, 1), 3), ((0, 1), 4)}

    def test_singleton_key(self):
        rel = engineered_relation(100, 4, keys=[[0]], seed=5)
        assert discovered_tuples(rel) == {((0,), 1), ((0,), 2), ((0,), 3)}

    def test_multiple_keys_and_plants(self):
        keys = [[0, 1], [2, 3]]
        planted = [([4, 5], 6)]
        rel = engineered_relation(300, 8, keys=keys, planted=planted, seed=6)
        assert discovered_tuples(rel) == set(expected_fds(8, keys, planted))

    def test_nulls_do_not_change_structure(self):
        rel = engineered_relation(
            200, 6, keys=[[0]], null_rates={4: 0.15, 5: 0.2}, seed=7
        )
        assert discovered_tuples(rel) == set(expected_fds(6, [[0]], []))

    def test_duplicates_do_not_change_structure(self):
        rel = engineered_relation(
            150, 5, keys=[[0, 1]], duplicate_factor=0.3, seed=8
        )
        assert discovered_tuples(rel) == set(expected_fds(5, [[0, 1]], []))
        assert rel.n_rows > 150

    def test_long_lhs_plant(self):
        rel = engineered_relation(200, 7, planted=[([0, 1, 2, 3], 4)], seed=9)
        assert discovered_tuples(rel) == {((0, 1, 2, 3), 4)}

    def test_neq_exactness_without_dup_null_interaction(self):
        """Under null ≠ null the guarantee holds when duplicates and
        nulls are not combined (see the generator's docstring)."""
        keys = [[0, 1]]
        planted = [([2, 3], 4)]
        rel = engineered_relation(
            150, 7, keys=keys, planted=planted, null_rates={6: 0.15}, seed=21
        ).with_semantics("neq")
        assert discovered_tuples(rel) == set(expected_fds(7, keys, planted))

    def test_neq_with_duplicates_no_nulls(self):
        keys = [[0]]
        rel = engineered_relation(
            120, 5, keys=keys, duplicate_factor=0.2, seed=22
        ).with_semantics("neq")
        assert discovered_tuples(rel) == set(expected_fds(5, keys, []))

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 100))
    def test_exactness_property(self, seed):
        keys = [[0]]
        planted = [([1, 2], 3)]
        rel = engineered_relation(
            80, 6, keys=keys, planted=planted, seed=seed,
            null_rates={5: 0.1}, duplicate_factor=0.1,
        )
        assert discovered_tuples(rel) == set(expected_fds(6, keys, planted))


class TestValidation:
    def test_overlapping_keys_rejected(self):
        with pytest.raises(EngineeringError):
            engineered_relation(50, 5, keys=[[0, 1], [1, 2]])

    def test_empty_key_rejected(self):
        with pytest.raises(EngineeringError):
            engineered_relation(50, 5, keys=[[]])

    def test_key_out_of_range(self):
        with pytest.raises(EngineeringError):
            engineered_relation(50, 3, keys=[[5]])

    def test_trivial_plant_rejected(self):
        with pytest.raises(EngineeringError):
            engineered_relation(50, 5, planted=[([0, 1], 1)])

    def test_shared_lhs_rejected(self):
        with pytest.raises(EngineeringError):
            engineered_relation(50, 6, planted=[([0, 1], 2), ([1, 3], 4)])

    def test_plant_touching_key_rejected(self):
        with pytest.raises(EngineeringError):
            engineered_relation(50, 6, keys=[[0]], planted=[([0, 1], 2)])

    def test_null_on_structural_column_rejected(self):
        with pytest.raises(EngineeringError):
            engineered_relation(50, 6, keys=[[0]], null_rates={0: 0.1})
        with pytest.raises(EngineeringError):
            engineered_relation(
                50, 6, planted=[([1], 2)], null_rates={2: 0.1}
            )

    def test_empty_lhs_plant_rejected(self):
        with pytest.raises(EngineeringError):
            engineered_relation(50, 5, planted=[([], 1)])

    def test_derived_twice_rejected(self):
        with pytest.raises(EngineeringError):
            engineered_relation(50, 6, planted=[([0], 2), ([1], 2)])


class TestDeterminism:
    def test_same_seed_same_rows(self):
        a = engineered_relation(60, 5, keys=[[0]], seed=11)
        b = engineered_relation(60, 5, keys=[[0]], seed=11)
        assert list(a.iter_rows()) == list(b.iter_rows())
