"""Unit tests for cover transformations (left-reduction, canonical)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import DHyFD
from repro.covers.canonical import (
    canonical_cover,
    compare_covers,
    is_left_reduced,
    is_non_redundant,
    left_reduce,
    merge_same_lhs,
    non_redundant_cover,
)
from repro.covers.implication import equivalent
from repro.datasets.synthetic import random_relation
from repro.relational import attrset
from repro.relational.fd import FD, FDSet


def A(*attrs):
    return attrset.from_attrs(attrs)


class TestLeftReduce:
    def test_drops_extraneous_attribute(self):
        # 0 -> 1 makes attribute 1 extraneous in {0,1} -> 2
        fds = [FD(A(0), A(1)), FD(A(0, 1), A(2))]
        reduced = left_reduce(fds)
        assert FD(A(0), A(2)) in reduced
        assert FD(A(0, 1), A(2)) not in reduced

    def test_already_reduced_unchanged(self):
        fds = FDSet([FD(A(0), A(1)), FD(A(2), A(3))])
        assert left_reduce(fds) == fds

    def test_is_left_reduced(self):
        assert is_left_reduced([FD(A(0), A(1)), FD(A(2), A(3))])
        assert not is_left_reduced([FD(A(0), A(1)), FD(A(0, 1), A(2))])


class TestNonRedundant:
    def test_drops_transitive_fd(self):
        fds = [FD(A(0), A(1)), FD(A(1), A(2)), FD(A(0), A(2))]
        cover = non_redundant_cover(fds)
        assert FD(A(0), A(2)) not in cover
        assert len(cover) == 2

    def test_keeps_needed_fds(self):
        fds = [FD(A(0), A(1)), FD(A(1), A(0))]
        assert len(non_redundant_cover(fds)) == 2

    def test_is_non_redundant(self):
        assert is_non_redundant([FD(A(0), A(1)), FD(A(1), A(2))])
        assert not is_non_redundant(
            [FD(A(0), A(1)), FD(A(1), A(2)), FD(A(0), A(2))]
        )

    def test_result_equivalent(self):
        fds = [FD(A(0), A(1)), FD(A(1), A(2)), FD(A(0), A(2)), FD(A(0), A(3))]
        cover = non_redundant_cover(fds)
        assert equivalent(fds, cover)


class TestMerge:
    def test_merges_same_lhs(self):
        merged = merge_same_lhs([FD(A(0), A(1)), FD(A(0), A(2)), FD(A(1), A(3))])
        assert merged == FDSet([FD(A(0), A(1, 2)), FD(A(1), A(3))])

    def test_unique_lhs_property(self):
        merged = merge_same_lhs([FD(A(0), A(1)), FD(A(0), A(2))])
        lhss = [fd.lhs for fd in merged]
        assert len(lhss) == len(set(lhss)) == 1


class TestCanonicalCover:
    def test_textbook_example(self):
        # Σ = {0->1, 1->2, 0->2}: canonical cover drops 0->2.
        fds = [FD(A(0), A(1)), FD(A(1), A(2)), FD(A(0), A(2))]
        cover = canonical_cover(fds)
        assert cover == FDSet([FD(A(0), A(1)), FD(A(1), A(2))])

    def test_merges_rhs(self):
        fds = [FD(A(0), A(1)), FD(A(0), A(2))]
        assert canonical_cover(fds) == FDSet([FD(A(0), A(1, 2))])

    def test_not_left_reduced_input(self):
        fds = [FD(A(0), A(1)), FD(A(0, 1), A(2))]
        cover = canonical_cover(fds, assume_left_reduced=False)
        assert cover == FDSet([FD(A(0), A(1, 2))])

    def test_canonical_properties_on_discovery_output(self):
        rel = random_relation(40, 6, domain_sizes=3, seed=13)
        discovered = DHyFD().discover(rel).fds
        cover = canonical_cover(discovered)
        singletons = list(cover.split())
        assert equivalent(discovered, cover)
        assert is_non_redundant(singletons)
        assert is_left_reduced(singletons)
        lhss = [fd.lhs for fd in cover]
        assert len(lhss) == len(set(lhss))

    def test_never_larger_than_input(self):
        rel = random_relation(40, 6, domain_sizes=3, seed=14)
        discovered = DHyFD().discover(rel).fds
        canonical, comparison = compare_covers(discovered)
        assert comparison.canonical_count <= comparison.left_reduced_count
        assert (
            comparison.canonical_occurrences <= comparison.left_reduced_occurrences
        )
        assert 0 < comparison.size_percent <= 100.0

    def test_compare_covers_counts(self):
        fds = FDSet([FD(A(0), A(1)), FD(A(1), A(2)), FD(A(0), A(2))])
        canonical, comparison = compare_covers(fds)
        assert comparison.left_reduced_count == 3
        assert comparison.left_reduced_occurrences == 6
        assert comparison.canonical_count == 2
        assert comparison.seconds >= 0

    def test_empty_cover(self):
        canonical, comparison = compare_covers(FDSet())
        assert len(canonical) == 0
        assert comparison.size_percent == 100.0


@settings(deadline=None, max_examples=25)
@given(seed=st.integers(0, 500), rows=st.integers(5, 35))
def test_canonical_equivalence_property(seed, rows):
    """For any discovered cover, canonical form is an equivalent,
    non-redundant, unique-LHS representation that is never bigger."""
    rel = random_relation(rows, 5, domain_sizes=3, seed=seed)
    discovered = DHyFD().discover(rel).fds
    cover = canonical_cover(discovered)
    assert equivalent(discovered, cover)
    assert is_non_redundant(list(cover))
    assert len({fd.lhs for fd in cover}) == len(cover)
    assert len(cover) <= max(1, len(discovered))
