"""Unit tests for candidate-key computation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.covers.implication import ImplicationEngine
from repro.normalize.keys import (
    candidate_keys,
    is_superkey,
    minimize_superkey,
    prime_attributes,
)
from repro.relational import attrset
from repro.relational.fd import FD


def A(*attrs):
    return attrset.from_attrs(attrs)


class TestCandidateKeys:
    def test_no_fds_whole_schema_is_key(self):
        assert candidate_keys(3, []) == [A(0, 1, 2)]

    def test_single_chain(self):
        # 0 -> 1 -> 2: key is {0}
        fds = [FD(A(0), A(1)), FD(A(1), A(2))]
        assert candidate_keys(3, fds) == [A(0)]

    def test_two_keys_cycle(self):
        # 0 -> 1 and 1 -> 0 with free attr 2: keys {0,2} and {1,2}
        fds = [FD(A(0), A(1)), FD(A(1), A(0))]
        assert set(candidate_keys(3, fds)) == {A(0, 2), A(1, 2)}

    def test_composite_key(self):
        fds = [FD(A(0, 1), A(2)), FD(A(0, 1), A(3))]
        assert candidate_keys(4, fds) == [A(0, 1)]

    def test_textbook_many_keys(self):
        # R(0,1,2) with 0->1, 1->2, 2->0: every singleton is a key
        fds = [FD(A(0), A(1)), FD(A(1), A(2)), FD(A(2), A(0))]
        assert set(candidate_keys(3, fds)) == {A(0), A(1), A(2)}

    def test_keys_are_minimal_and_super(self):
        fds = [FD(A(0), A(1, 2)), FD(A(3), A(4)), FD(A(1, 3), A(0))]
        keys = candidate_keys(5, fds)
        engine = ImplicationEngine(fds)
        full = attrset.full_set(5)
        for key in keys:
            assert engine.closure(key) == full
            for attr in attrset.iter_attrs(key):
                assert engine.closure(attrset.remove(key, attr)) != full

    def test_max_keys_guard(self):
        # pairwise-equivalent attributes explode the key count
        fds = [FD(A(i), A((i + 1) % 8)) for i in range(8)]
        with pytest.raises(RuntimeError):
            candidate_keys(8, fds, max_keys=2)


class TestHelpers:
    def test_is_superkey(self):
        fds = [FD(A(0), A(1))]
        assert is_superkey(A(0, 2), 3, fds)
        assert not is_superkey(A(0), 3, fds)

    def test_minimize_superkey(self):
        fds = [FD(A(0), A(1)), FD(A(1), A(2))]
        engine = ImplicationEngine(fds)
        assert minimize_superkey(A(0, 1, 2), 3, engine) == A(0)

    def test_prime_attributes(self):
        fds = [FD(A(0), A(1)), FD(A(1), A(0))]
        # keys are {0,2} and {1,2} -> all three attrs are prime
        assert prime_attributes(3, fds) == A(0, 1, 2)

    def test_prime_attributes_simple(self):
        fds = [FD(A(0), A(1)), FD(A(0), A(2))]
        assert prime_attributes(3, fds) == A(0)


@settings(deadline=None, max_examples=30)
@given(
    fds=st.lists(
        st.tuples(
            st.integers(1, 31), st.integers(0, 4)
        ).map(lambda p: FD(p[0] & ~attrset.singleton(p[1]) or attrset.singleton((p[1] + 1) % 5) , attrset.singleton(p[1]))),
        max_size=6,
    )
)
def test_keys_property(fds):
    """Every reported key is a minimal superkey; keys pairwise incomparable."""
    keys = candidate_keys(5, fds)
    engine = ImplicationEngine(fds)
    full = attrset.full_set(5)
    assert keys
    for key in keys:
        assert engine.closure(key) == full
        for attr in attrset.iter_attrs(key):
            assert engine.closure(attrset.remove(key, attr)) != full
    for left in keys:
        for right in keys:
            if left != right:
                assert not attrset.is_subset(left, right)
