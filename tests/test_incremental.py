"""Tests for incremental FD maintenance."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import DHyFD
from repro.datasets.synthetic import random_relation
from repro.incremental import IncrementalFDMaintainer
from repro.relational import attrset
from repro.relational.fd import FD
from repro.relational.null import NULL
from repro.relational.relation import Relation


def fresh_discovery(relation):
    return DHyFD().discover(relation).fds


class TestAppendRows:
    def test_no_change_when_rows_conform(self, city_relation):
        maintainer = IncrementalFDMaintainer(city_relation)
        before = maintainer.cover
        # a new row consistent with zip->city, constant state, new name
        maintainer.append_rows([("gus", "z9", "c9", "nc")])
        assert maintainer.cover == fresh_discovery(maintainer.relation)
        # zip -> city specifically survives
        assert FD(attrset.singleton(1), attrset.singleton(2)) in maintainer.cover

    def test_violation_specializes(self, city_relation):
        maintainer = IncrementalFDMaintainer(city_relation)
        # break zip -> city: reuse z1 with a different city
        maintainer.append_rows([("gus", "z1", "c9", "nc")])
        assert FD(attrset.singleton(1), attrset.singleton(2)) not in maintainer.cover
        assert maintainer.cover == fresh_discovery(maintainer.relation)

    def test_constant_column_broken(self, city_relation):
        maintainer = IncrementalFDMaintainer(city_relation)
        maintainer.append_rows([("gus", "z9", "c9", "va")])
        assert FD(attrset.EMPTY, attrset.singleton(3)) not in maintainer.cover
        assert maintainer.cover == fresh_discovery(maintainer.relation)

    def test_batch_append(self, city_relation):
        maintainer = IncrementalFDMaintainer(city_relation)
        maintainer.append_rows(
            [
                ("gus", "z1", "c9", "nc"),
                ("hal", "z9", "c1", "va"),
                ("ivy", "z9", "c2", "nc"),
            ]
        )
        assert maintainer.cover == fresh_discovery(maintainer.relation)

    def test_empty_append_is_noop(self, city_relation):
        maintainer = IncrementalFDMaintainer(city_relation)
        before = maintainer.cover
        assert maintainer.append_rows([]) == before
        assert maintainer.relation.n_rows == 6

    def test_append_with_nulls(self, null_relation):
        maintainer = IncrementalFDMaintainer(null_relation)
        maintainer.append_rows([("e", NULL, "z")])
        assert maintainer.cover == fresh_discovery(maintainer.relation)

    def test_successive_appends(self, city_relation):
        maintainer = IncrementalFDMaintainer(city_relation)
        for row in [
            ("gus", "z1", "c9", "nc"),
            ("hal", "z1", "c9", "va"),
            ("ivy", "z2", "c2", "nc"),
        ]:
            maintainer.append_rows([row])
            assert maintainer.cover == fresh_discovery(maintainer.relation)

    def test_precomputed_cover_accepted(self, city_relation):
        cover = fresh_discovery(city_relation)
        maintainer = IncrementalFDMaintainer(city_relation, cover=cover)
        assert maintainer.cover == cover

    def test_shape_mismatch_rejected(self, city_relation):
        maintainer = IncrementalFDMaintainer(city_relation)
        with pytest.raises(Exception):
            maintainer.append_rows([("too", "short")])


class TestRemoveRows:
    def test_deletion_restores_fd(self, city_relation):
        maintainer = IncrementalFDMaintainer(city_relation)
        maintainer.append_rows([("gus", "z1", "c9", "nc")])
        assert FD(attrset.singleton(1), attrset.singleton(2)) not in maintainer.cover
        maintainer.remove_rows([6])  # drop the violator again
        assert FD(attrset.singleton(1), attrset.singleton(2)) in maintainer.cover
        assert maintainer.cover == fresh_discovery(maintainer.relation)
        assert maintainer.rediscoveries == 1

    def test_rediscovery_reuses_algorithm_kwargs(self, monkeypatch, city_relation):
        """Regression: remove_rows used to rediscover with default kwargs,
        dropping the maintainer's configured jobs/backend."""
        from repro.incremental import maintainer as maintainer_mod

        calls = []
        real = maintainer_mod.make_algorithm

        def spying_make_algorithm(name, **kwargs):
            calls.append((name, dict(kwargs)))
            return real(name, **kwargs)

        monkeypatch.setattr(
            maintainer_mod, "make_algorithm", spying_make_algorithm
        )
        maintainer = IncrementalFDMaintainer(
            city_relation, algorithm="dhyfd", backend="python", jobs=1
        )
        maintainer.remove_rows([0])
        assert len(calls) == 2  # initial discovery + rediscovery
        for name, kwargs in calls:
            assert name == "dhyfd"
            assert kwargs.get("backend") == "python"
            assert kwargs.get("jobs") == 1
        assert maintainer.cover == fresh_discovery(maintainer.relation)

    def test_kwargs_with_precomputed_cover(self, city_relation):
        cover = fresh_discovery(city_relation)
        maintainer = IncrementalFDMaintainer(
            city_relation, cover=cover, backend="python"
        )
        assert maintainer.algorithm_kwargs == {"backend": "python"}
        maintainer.remove_rows([5])
        assert maintainer.cover == fresh_discovery(maintainer.relation)


class TestAppendRowsRelation:
    def test_codes_preserved(self, city_relation):
        extended = city_relation.append_rows([("gus", "z1", "c1", "nc")])
        assert extended.n_rows == 7
        # old rows keep their codes
        for attr in range(4):
            assert (
                extended.codes(attr)[:6] == city_relation.codes(attr)
            ).all()
        # the reused zip value got the same code as before
        assert extended.codes(1)[6] == city_relation.codes(1)[0]

    def test_new_values_get_new_codes(self, city_relation):
        extended = city_relation.append_rows([("gus", "z9", "c1", "nc")])
        assert extended.codes(1)[6] == city_relation.cardinality(1)
        assert extended.cardinality(1) == city_relation.cardinality(1) + 1

    def test_null_eq_reuses_code(self, null_relation):
        extended = null_relation.append_rows([("e", NULL, "z")])
        assert extended.codes(1)[4] == null_relation.codes(1)[0]

    def test_null_neq_fresh_code(self, null_relation):
        rel = null_relation.with_semantics("neq")
        extended = rel.append_rows([("e", NULL, "z")])
        assert extended.codes(1)[4] not in set(rel.codes(1).tolist())

    def test_decoder_roundtrip(self, city_relation):
        extended = city_relation.append_rows([("gus", "z9", "c1", "nc")])
        assert extended.row_values(6) == ("gus", "z9", "c1", "nc")


@settings(deadline=None, max_examples=15)
@given(
    seed=st.integers(0, 300),
    n_new=st.integers(1, 6),
)
def test_incremental_equals_rediscovery_property(seed, n_new):
    """Incremental maintenance equals from-scratch discovery."""
    import random as rnd

    rng = rnd.Random(seed)
    rel = random_relation(20, 4, domain_sizes=3, seed=seed)
    maintainer = IncrementalFDMaintainer(rel)
    new_rows = [
        tuple(f"v{rng.randrange(3)}" for _ in range(4)) for _ in range(n_new)
    ]
    maintainer.append_rows(new_rows)
    assert maintainer.cover == fresh_discovery(maintainer.relation)
