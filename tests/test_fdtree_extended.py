"""Unit tests for extended FD-trees (paper §IV-C, Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.fdtree.extended import ExtendedFDTree, ExtFDNode
from repro.relational import attrset
from repro.relational.fd import FD


def A(*attrs):
    return attrset.from_attrs(attrs)


class TestAddFd:
    def test_single_fd_path(self):
        tree = ExtendedFDTree(5)
        tree.add_fd(A(0, 2), A(3))
        fds = list(tree.iter_fds())
        assert fds == [FD(A(0, 2), A(3))]
        assert tree.fd_count == 1

    def test_paper_example_figure1(self):
        # FDs A->B, AB->CD, CD->B over R = {A..E} (0..4).
        tree = ExtendedFDTree(5)
        tree.add_fd(A(0), A(1))
        tree.add_fd(A(0, 1), A(2, 3))
        tree.add_fd(A(2, 3), A(1))
        assert set(tree.iter_fds()) == {
            FD(A(0), A(1)),
            FD(A(0, 1), A(2, 3)),
            FD(A(2, 3), A(1)),
        }
        assert tree.fd_count == 4  # AB->CD counts two RHS attrs

    def test_rhs_union_on_same_path(self):
        tree = ExtendedFDTree(4)
        tree.add_fd(A(0), A(1))
        tree.add_fd(A(0), A(2))
        assert list(tree.iter_fds()) == [FD(A(0), A(1, 2))]
        assert tree.fd_count == 2

    def test_empty_lhs_on_root(self):
        tree = ExtendedFDTree(3)
        tree.add_fd(attrset.EMPTY, A(0, 1, 2))
        assert tree.root.rhs == A(0, 1, 2)
        assert tree.fd_count == 3

    def test_default_ids_inherit_consistently(self):
        tree = ExtendedFDTree(5)
        end = tree.add_fd(A(1, 3), A(4))
        assert end.attr == 3
        # With cl=0 nodes below level 1 inherit their parent's id; the
        # parent's singleton partition π_1 refines a subset of {1,3}.
        assert end.parent.id == 1
        assert end.id == 1

    def test_id_inheritance_beyond_controlled_level(self):
        tree = ExtendedFDTree(6)
        node = tree.add_fd(A(0, 1), A(5))
        node.id = 10  # pretend the DDM assigned a dynamic id
        # new FD extends the path below the controlled level 2
        end = tree.add_fd(A(0, 1, 2, 3), A(5), cl=2, vl=4)
        assert end.id == 10
        assert end.parent.id == 10

    def test_default_id_at_or_below_controlled_level(self):
        tree = ExtendedFDTree(6)
        tree.add_fd(A(0, 1), A(5))
        # new sibling path entirely within the controlled level
        end = tree.add_fd(A(0, 2), A(5), cl=2, vl=2)
        assert end.id == 2  # default id = own attribute

    def test_vl_nodes_updated(self):
        tree = ExtendedFDTree(6)
        vl_nodes = []
        tree.add_fd(A(0, 2, 4), A(5), cl=1, vl=2, vl_nodes=vl_nodes)
        assert [n.attr for n in vl_nodes] == [2]

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            ExtendedFDTree(0)


class TestQueries:
    def build(self):
        tree = ExtendedFDTree(6)
        tree.add_fd(A(0), A(1))
        tree.add_fd(A(0, 2), A(3, 4))
        tree.add_fd(A(2, 3), A(5))
        return tree

    def test_find_covered(self):
        tree = self.build()
        covered = tree.find_covered(A(0, 2), A(1, 3, 4, 5))
        assert covered == A(1, 3, 4)  # 5 needs {2,3} which is not inside {0,2}

    def test_find_covered_equal_lhs(self):
        tree = self.build()
        assert tree.find_covered(A(0), A(1)) == A(1)

    def test_find_covered_nothing(self):
        tree = self.build()
        assert tree.find_covered(A(4, 5), A(1)) == attrset.EMPTY

    def test_find_covered_requiring_matches_filtered(self):
        tree = self.build()
        # generalizations of {0,2,4} for candidates {1,3,4,5} that pass
        # through attr 2: 0-2 -> {3,4} qualifies, 0 -> 1 does not
        covered = tree.find_covered_requiring(A(0, 2, 4), A(1, 3, 4, 5), 2)
        assert covered == A(3, 4)

    def test_find_covered_requiring_through_first_attr(self):
        tree = self.build()
        covered = tree.find_covered_requiring(A(0, 2), A(1, 3, 4), 0)
        assert covered == A(1, 3, 4)  # both FDs pass through attr 0

    def test_find_covered_requiring_missing_attr(self):
        tree = self.build()
        covered = tree.find_covered_requiring(A(0, 2), A(1), 5)
        assert covered == attrset.EMPTY

    def test_contains_generalization(self):
        tree = self.build()
        assert tree.contains_generalization(A(0, 5), 1)
        assert not tree.contains_generalization(A(2), 5)
        assert tree.contains_generalization(A(2, 3), 5)

    def test_nodes_at_level(self):
        tree = self.build()
        level1 = {n.attr for n in tree.nodes_at_level(1)}
        assert level1 == {0, 2}
        level2 = {n.attr for n in tree.nodes_at_level(2)}
        assert level2 == {2, 3}
        assert tree.nodes_at_level(3) == []

    def test_nodes_at_level_zero_is_root(self):
        tree = self.build()
        assert tree.nodes_at_level(0) == [tree.root]

    def test_max_depth(self):
        assert self.build().max_depth() == 2

    def test_node_count(self):
        # paths: 0, 0-2, 2-3 -> nodes {0, 0.2, 2, 2.3}
        assert self.build().node_count() == 4

    def test_iter_fd_nodes(self):
        tree = self.build()
        assert len(list(tree.iter_fd_nodes())) == 3

    def test_path(self):
        tree = self.build()
        end = tree.add_fd(A(1, 3, 4), A(5))
        assert end.path() == A(1, 3, 4)


class TestRemoval:
    def test_strip_rhs_updates_count(self):
        tree = ExtendedFDTree(5)
        node = tree.add_fd(A(0), A(1, 2, 3))
        tree.strip_rhs(node, A(1, 2))
        assert tree.fd_count == 1
        assert node.rhs == A(3)

    def test_strip_rhs_ignores_absent(self):
        tree = ExtendedFDTree(5)
        node = tree.add_fd(A(0), A(1))
        tree.strip_rhs(node, A(2, 3))
        assert tree.fd_count == 1

    def test_prune_dead_path(self):
        tree = ExtendedFDTree(5)
        node = tree.add_fd(A(0, 1, 2), A(3))
        tree.strip_rhs(node, A(3))
        tree.prune_dead_path(node)
        assert tree.node_count() == 0
        assert node.deleted

    def test_prune_stops_at_live_ancestor(self):
        tree = ExtendedFDTree(5)
        tree.add_fd(A(0), A(4))
        node = tree.add_fd(A(0, 1), A(3))
        tree.strip_rhs(node, A(3))
        tree.prune_dead_path(node)
        assert tree.node_count() == 1  # node 0 survives (it is an FD-node)
        assert list(tree.iter_fds()) == [FD(A(0), A(4))]

    def test_prune_keeps_node_with_children(self):
        tree = ExtendedFDTree(5)
        parent = tree.add_fd(A(0), A(4))
        tree.add_fd(A(0, 1), A(3))
        tree.strip_rhs(parent, A(4))
        tree.prune_dead_path(parent)
        assert not parent.deleted
        assert tree.node_count() == 2
