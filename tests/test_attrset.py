"""Unit tests for bitmask attribute sets."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.relational import attrset

attr_sets = st.integers(min_value=0, max_value=(1 << 20) - 1)


class TestBasics:
    def test_empty_is_zero(self):
        assert attrset.EMPTY == 0

    def test_singleton(self):
        assert attrset.singleton(0) == 1
        assert attrset.singleton(3) == 8

    def test_from_attrs(self):
        assert attrset.from_attrs([0, 2]) == 0b101
        assert attrset.from_attrs([]) == attrset.EMPTY
        assert attrset.from_attrs([1, 1, 1]) == 0b10

    def test_full_set(self):
        assert attrset.full_set(3) == 0b111
        assert attrset.full_set(1) == 0b1

    def test_contains(self):
        mask = attrset.from_attrs([1, 4])
        assert attrset.contains(mask, 1)
        assert attrset.contains(mask, 4)
        assert not attrset.contains(mask, 0)
        assert not attrset.contains(mask, 5)

    def test_add_remove(self):
        mask = attrset.EMPTY
        mask = attrset.add(mask, 2)
        assert attrset.contains(mask, 2)
        mask = attrset.remove(mask, 2)
        assert mask == attrset.EMPTY
        # removing an absent attribute is a no-op
        assert attrset.remove(attrset.singleton(1), 5) == attrset.singleton(1)

    def test_difference_and_complement(self):
        left = attrset.from_attrs([0, 1, 2])
        right = attrset.from_attrs([1, 3])
        assert attrset.difference(left, right) == attrset.from_attrs([0, 2])
        assert attrset.complement(left, 4) == attrset.singleton(3)

    def test_count(self):
        assert attrset.count(attrset.EMPTY) == 0
        assert attrset.count(0b1011) == 3

    def test_iter_and_to_list(self):
        mask = attrset.from_attrs([5, 1, 3])
        assert list(attrset.iter_attrs(mask)) == [1, 3, 5]
        assert attrset.to_list(mask) == [1, 3, 5]

    def test_lowest_highest(self):
        mask = attrset.from_attrs([2, 6])
        assert attrset.lowest(mask) == 2
        assert attrset.highest(mask) == 6

    def test_lowest_highest_empty_raise(self):
        with pytest.raises(ValueError):
            attrset.lowest(attrset.EMPTY)
        with pytest.raises(ValueError):
            attrset.highest(attrset.EMPTY)

    def test_subset_relations(self):
        small = attrset.from_attrs([1])
        big = attrset.from_attrs([1, 2])
        assert attrset.is_subset(small, big)
        assert attrset.is_subset(big, big)
        assert not attrset.is_proper_subset(big, big)
        assert attrset.is_proper_subset(small, big)
        assert not attrset.is_subset(big, small)
        assert attrset.is_subset(attrset.EMPTY, small)

    def test_iter_subsets(self):
        mask = attrset.from_attrs([0, 2])
        subsets = set(attrset.iter_subsets(mask))
        assert subsets == {0, 1, 4, 5}

    def test_iter_subsets_empty(self):
        assert list(attrset.iter_subsets(attrset.EMPTY)) == [0]

    def test_format(self):
        names = ["a", "b", "c"]
        assert attrset.format_attrs(attrset.EMPTY, names) == "∅"
        assert attrset.format_attrs(attrset.from_attrs([0, 2]), names) == "a,c"


class TestProperties:
    @given(attr_sets, attr_sets)
    def test_difference_disjoint_from_right(self, left, right):
        assert attrset.difference(left, right) & right == 0

    @given(attr_sets, attr_sets)
    def test_subset_iff_union_is_big(self, small, big):
        assert attrset.is_subset(small, big) == (small | big == big)

    @given(attr_sets)
    def test_count_matches_iteration(self, mask):
        assert attrset.count(mask) == len(list(attrset.iter_attrs(mask)))

    @given(attr_sets)
    def test_roundtrip_through_list(self, mask):
        assert attrset.from_attrs(attrset.to_list(mask)) == mask

    @given(st.integers(min_value=0, max_value=(1 << 10) - 1))
    def test_subset_enumeration_complete(self, mask):
        subs = list(attrset.iter_subsets(mask))
        assert len(subs) == 2 ** attrset.count(mask)
        assert len(set(subs)) == len(subs)
        assert all(attrset.is_subset(s, mask) for s in subs)

    @given(attr_sets)
    def test_complement_involution(self, mask):
        n = 20
        assert attrset.complement(attrset.complement(mask, n), n) == mask
