"""Tests for FD cover serialization."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import DHyFD
from repro.datasets.synthetic import random_relation
from repro.relational.fd import FD, FDSet
from repro.relational.fd_io import (
    cover_from_json,
    cover_to_json,
    load_cover,
    save_cover,
)
from repro.relational.schema import RelationSchema


@pytest.fixture
def schema():
    return RelationSchema(["a", "b", "c", "d"])


class TestRoundtrip:
    def test_simple(self, schema):
        fds = FDSet([FD.of(["a"], "b", schema), FD.of(["b", "c"], ["a", "d"], schema)])
        assert cover_from_json(cover_to_json(fds, schema), schema) == fds

    def test_empty(self, schema):
        assert cover_from_json(cover_to_json(FDSet(), schema), schema) == FDSet()

    def test_empty_lhs(self, schema):
        fds = FDSet([FD.of([], "a", schema)])
        assert cover_from_json(cover_to_json(fds, schema), schema) == fds

    def test_file_roundtrip(self, schema, tmp_path):
        fds = FDSet([FD.of(["a"], "c", schema)])
        path = tmp_path / "cover.json"
        save_cover(fds, schema, path)
        assert load_cover(path, schema) == fds

    def test_survives_column_reordering(self, schema):
        fds = FDSet([FD.of(["a"], "c", schema)])
        text = cover_to_json(fds, schema)
        reordered = RelationSchema(["c", "d", "a", "b"])
        loaded = cover_from_json(text, reordered)
        assert loaded == FDSet([FD.of(["a"], "c", reordered)])

    @settings(deadline=None, max_examples=10)
    @given(seed=st.integers(0, 200))
    def test_discovered_cover_roundtrip(self, seed):
        rel = random_relation(20, 4, domain_sizes=3, seed=seed)
        fds = DHyFD().discover(rel).fds
        text = cover_to_json(fds, rel.schema)
        assert cover_from_json(text, rel.schema) == fds


class TestValidation:
    def test_wrong_format_rejected(self, schema):
        with pytest.raises(ValueError):
            cover_from_json('{"format": "something-else"}', schema)

    def test_wrong_version_rejected(self, schema):
        with pytest.raises(ValueError):
            cover_from_json(
                '{"format": "repro-fd-cover", "version": 99}', schema
            )

    def test_unknown_columns_rejected(self, schema):
        text = (
            '{"format": "repro-fd-cover", "version": 1, '
            '"columns": ["zzz"], "fds": []}'
        )
        with pytest.raises(ValueError):
            cover_from_json(text, schema)
