"""End-to-end integration tests across modules on benchmark replicas."""

from __future__ import annotations

import pytest

from repro.algorithms import DHyFD, HyFD, make_algorithm
from repro.covers.canonical import canonical_cover, compare_covers
from repro.covers.implication import equivalent
from repro.datasets.benchmarks import load_benchmark
from repro.datasets.engineered import expected_fds
from repro.profiling import profile
from repro.ranking.ranker import rank_cover
from repro.ranking.redundancy import dataset_redundancy
from repro.relational import attrset


def fd_tuples(fds):
    return {(tuple(attrset.to_list(f.lhs)), attrset.to_list(f.rhs)[0]) for f in fds}


class TestEngineeredReplicasEndToEnd:
    """Replicas built with engineered_relation have known ground truth."""

    def test_weather_structure(self):
        rel = load_benchmark("weather", n_rows=500)
        got = fd_tuples(DHyFD().discover(rel).fds)
        want = set(
            expected_fds(
                18,
                [[0, 1]],
                [([2, 3], 4), ([5, 6, 7], 8), ([9, 10], 11), ([12, 13, 14], 15)],
            )
        )
        assert got == want

    def test_pdbx_structure(self):
        rel = load_benchmark("pdbx", n_rows=800)
        got = fd_tuples(DHyFD().discover(rel).fds)
        want = set(expected_fds(13, [[0], [1]], [([2, 3], 4)]))
        assert got == want

    def test_lineitem_hyfd_agrees(self):
        rel = load_benchmark("lineitem", n_rows=500)
        assert HyFD().discover(rel).fds == DHyFD().discover(rel).fds


class TestCrossModuleFlows:
    def test_profile_ncvoter(self):
        rel = load_benchmark("ncvoter", n_rows=300)
        outcome = profile(rel)
        assert outcome.discovery.fd_count > 50
        assert len(outcome.canonical) < outcome.discovery.fd_count
        assert equivalent(outcome.left_reduced, outcome.canonical)
        assert outcome.redundancy is not None
        assert outcome.redundancy.red_including_null >= rel.n_rows  # σ1 alone

    def test_constant_state_is_top_ranked(self):
        rel = load_benchmark("ncvoter", n_rows=300)
        result = profile(rel)
        assert result.ranking is not None
        top = result.ranking.ranked[0]
        state = rel.schema.index_of("state")
        assert top.fd.lhs == attrset.EMPTY
        assert attrset.contains(top.fd.rhs, state)
        # the canonical cover merges all constant columns into one FD,
        # so the count is n_rows per constant column
        assert top.redundancy == rel.n_rows * top.fd.rhs_size

    def test_covers_and_redundancy_on_bridges(self):
        rel = load_benchmark("bridges")
        discovered = make_algorithm("dhyfd").discover(rel)
        cover, comparison = compare_covers(discovered.fds)
        assert comparison.canonical_count <= comparison.left_reduced_count
        report = dataset_redundancy(rel, cover)
        assert 0 <= report.red_including_null <= report.n_values
        ranking = rank_cover(rel, cover)
        assert len(ranking.ranked) == len(cover)

    def test_canonical_cover_transitivity_reduction(self):
        """Two keys: key1 -> key2 plus key2 -> rest makes key1's other
        FDs redundant, so the canonical cover shrinks a lot."""
        rel = load_benchmark("pdbx", n_rows=600)
        discovered = DHyFD().discover(rel).fds
        cover = canonical_cover(discovered)
        assert len(cover) < len(discovered)
        assert equivalent(discovered, cover)

    @pytest.mark.parametrize("name", ["hepatitis", "horse"])
    def test_fd_rich_replicas_run(self, name):
        rel = load_benchmark(name, n_rows=24)
        fds = make_algorithm("fdep2").discover(rel).fds
        assert len(fds) > 100  # the explosion regime is present

    def test_fragment_monotone_fds(self):
        """FDs valid on a relation stay valid on row fragments."""
        from repro.core.validation import check_fd

        rel = load_benchmark("abalone", n_rows=400)
        fds = DHyFD().discover(rel).fds
        fragment = rel.head(100)
        for fd in list(fds)[:50]:
            assert check_fd(fragment, fd.lhs, fd.rhs)
