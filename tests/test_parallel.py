"""Tests for the repro.parallel execution layer.

The load-bearing property is determinism: for every worker count the
discovered covers, the DiscoveryStats counters and the redundancy
numbers must be byte-identical to the serial path, on both kernel
backends and both null semantics.  Plus the failure model: a crashing
worker degrades to the serial path with a telemetry event, never to a
wrong answer.
"""

import os

import numpy as np
import pytest

from repro import parallel
from repro.core.dhyfd import DHyFD
from repro.core.sampling import initial_sample
from repro.covers.canonical import canonical_cover
from repro.parallel import config as parallel_config
from repro.parallel.pool import ENV_FAULT_INJECT, chunk_items
from repro.parallel.shm import SharedRelationBuffers, SharedRelationView
from repro.partitions.stripped import StrippedPartition
from repro.ranking.redundancy import (
    NullPolicy,
    dataset_redundancy,
    redundancy_positions,
    redundant_rows_for_lhs,
)
from repro.relational import attrset
from repro.relational.null import NullSemantics
from repro.telemetry import Tracer, use_tracer
from tests.conftest import make_random_relation

#: Force the parallel path regardless of relation size.
FORCE_PARALLEL = dict(parallel_min_rows=0, parallel_min_candidates=1)


def _force_thresholds(monkeypatch):
    monkeypatch.setattr(parallel_config, "DEFAULT_MIN_PARALLEL_ROWS", 0)
    monkeypatch.setattr(parallel_config, "DEFAULT_MIN_PARALLEL_ITEMS", 1)


def _stats_signature(stats):
    return (
        stats.validations,
        stats.comparisons,
        stats.sampled_non_fds,
        stats.induction_calls,
        stats.induction_nodes_visited,
        stats.induction_fds_inserted,
        stats.levels_processed,
        stats.partition_refreshes,
        stats.level_log,
    )


# ----------------------------------------------------------------------
# Jobs resolution
# ----------------------------------------------------------------------


class TestJobsResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(parallel.ENV_JOBS, raising=False)
        assert parallel.resolve_jobs() == 1

    def test_explicit_value_wins(self):
        assert parallel.resolve_jobs(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(parallel.ENV_JOBS, "5")
        assert parallel.resolve_jobs() == 5

    def test_auto_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv(parallel.ENV_JOBS, raising=False)
        expected = max(1, os.cpu_count() or 1)
        assert parallel.resolve_jobs(0) == expected
        assert parallel.resolve_jobs("auto") == expected

    def test_invalid_values_raise(self):
        with pytest.raises(ValueError):
            parallel.resolve_jobs(-1)
        with pytest.raises(ValueError):
            parallel.resolve_jobs("many")

    def test_set_default_jobs_round_trip(self, monkeypatch):
        monkeypatch.delenv(parallel.ENV_JOBS, raising=False)
        previous = parallel.set_default_jobs(4)
        try:
            assert parallel.resolve_jobs() == 4
        finally:
            parallel.set_default_jobs(previous)
        assert parallel.resolve_jobs() == previous

    def test_use_jobs_context(self, monkeypatch):
        monkeypatch.delenv(parallel.ENV_JOBS, raising=False)
        before = parallel.get_default_jobs()
        with parallel.use_jobs(2):
            assert parallel.resolve_jobs() == 2
        assert parallel.get_default_jobs() == before


# ----------------------------------------------------------------------
# Shared memory transport
# ----------------------------------------------------------------------


class TestSharedMemory:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_view_round_trips_relation(self, seed):
        relation = make_random_relation(seed)
        with SharedRelationBuffers(relation) as buffers:
            view = SharedRelationView(buffers.spec)
            assert view.n_rows == relation.n_rows
            assert view.n_cols == relation.n_cols
            assert np.array_equal(view.matrix(), relation.matrix())
            for attr in range(relation.n_cols):
                assert np.array_equal(view.codes(attr), relation.codes(attr))
                assert np.array_equal(view.null_mask(attr), relation.null_mask(attr))

    def test_close_is_idempotent(self):
        relation = make_random_relation(1)
        buffers = SharedRelationBuffers(relation)
        buffers.close()
        buffers.close()


# ----------------------------------------------------------------------
# Scheduling
# ----------------------------------------------------------------------


class TestChunking:
    def test_empty(self):
        assert chunk_items([], jobs=4) == []

    @pytest.mark.parametrize("n", [1, 7, 8, 9, 64, 101])
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_partition_preserves_order(self, n, jobs):
        items = list(range(n))
        batches = chunk_items(items, jobs=jobs)
        assert [item for batch in batches for item in batch] == items
        assert all(batch for batch in batches)

    def test_min_batch_respected(self):
        batches = chunk_items(list(range(100)), jobs=4, min_batch=30)
        assert all(len(batch) >= 30 for batch in batches[:-1])

    def test_small_input_single_batch(self):
        assert len(chunk_items(list(range(5)), jobs=4, min_batch=8)) == 1


# ----------------------------------------------------------------------
# End-to-end determinism
# ----------------------------------------------------------------------


class TestDiscoveryDeterminism:
    @pytest.mark.parametrize("semantics", [NullSemantics.EQ, NullSemantics.NEQ])
    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("seed", [3, 11])
    def test_covers_and_stats_identical_across_jobs(self, seed, backend, semantics):
        relation = make_random_relation(seed, semantics=semantics)
        baseline = DHyFD(backend=backend, jobs=1).discover(relation)
        for jobs in (2, 4):
            result = DHyFD(
                backend=backend, jobs=jobs, **FORCE_PARALLEL
            ).discover(relation)
            assert set(result.fds) == set(baseline.fds)
            assert _stats_signature(result.stats) == _stats_signature(
                baseline.stats
            )

    def test_jobs_flow_from_env(self, monkeypatch):
        relation = make_random_relation(5)
        baseline = DHyFD().discover(relation)
        monkeypatch.setenv(parallel.ENV_JOBS, "2")
        result = DHyFD(**FORCE_PARALLEL).discover(relation)
        assert set(result.fds) == set(baseline.fds)
        assert _stats_signature(result.stats) == _stats_signature(baseline.stats)

    def test_level_log_counts_only_validated_nodes(self):
        # The LevelDecision fix: candidate totals never undercount the
        # valid FDs found at the level (deleted/empty-RHS nodes are
        # excluded from both sides).
        entries = []
        for seed in range(8):
            relation = make_random_relation(seed)
            entries.extend(DHyFD().discover(relation).stats.level_log)
        assert entries
        for entry in entries:
            assert entry["valid"] <= entry["candidates"]


class TestRedundancyDeterminism:
    @pytest.mark.parametrize("policy", list(NullPolicy))
    def test_positions_identical_across_jobs(self, policy, monkeypatch):
        _force_thresholds(monkeypatch)
        relation = make_random_relation(7, semantics=NullSemantics.EQ)
        cover = list(canonical_cover(DHyFD().discover(relation).fds))
        serial = redundancy_positions(relation, cover, policy)
        for jobs in (2, 4):
            assert np.array_equal(
                serial, redundancy_positions(relation, cover, policy, jobs=jobs)
            )

    def test_report_identical_across_jobs(self, monkeypatch):
        _force_thresholds(monkeypatch)
        relation = make_random_relation(11)
        cover = canonical_cover(DHyFD().discover(relation).fds)
        serial = dataset_redundancy(relation, cover)
        for jobs in (2, 4):
            report = dataset_redundancy(relation, cover, jobs=jobs)
            assert report.n_values == serial.n_values
            assert report.red_excluding_null == serial.red_excluding_null
            assert report.red_including_null == serial.red_including_null


class TestSamplingDeterminism:
    @pytest.mark.parametrize("seed", [3, 7])
    def test_parallel_sample_equals_serial(self, seed):
        relation = make_random_relation(seed)
        singletons = [
            StrippedPartition.for_attribute(relation, attr)
            for attr in range(relation.n_cols)
        ]
        serial = initial_sample(relation, singletons)
        with parallel.ParallelExecutor(relation, jobs=2) as executor:
            assert initial_sample(relation, singletons, executor=executor) == serial


# ----------------------------------------------------------------------
# Vectorized redundant_rows_for_lhs (vs the original per-row loop)
# ----------------------------------------------------------------------


def _reference_rows_for_lhs(relation, partition, policy):
    from repro.ranking.redundancy import _lhs_null_mask

    marked = np.zeros(relation.n_rows, dtype=bool)
    lhs_nulls = (
        _lhs_null_mask(relation, partition.attrs)
        if policy is NullPolicy.EXCLUDE_LHS_RHS
        else None
    )
    for cluster in partition.clusters:
        if lhs_nulls is None:
            rows = cluster
        else:
            rows = [row for row in cluster if not lhs_nulls[row]]
            if len(rows) < 2:
                continue
        for row in rows:
            marked[row] = True
    return marked


class TestVectorizedRowMarking:
    @pytest.mark.parametrize("policy", list(NullPolicy))
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_reference_loop(self, seed, policy):
        relation = make_random_relation(seed)
        for attrs in (
            attrset.EMPTY,
            attrset.singleton(0),
            attrset.full_set(relation.n_cols),
        ):
            partition = StrippedPartition.for_attrs(relation, attrs)
            expected = _reference_rows_for_lhs(relation, partition, policy)
            actual = redundant_rows_for_lhs(relation, partition, policy)
            assert np.array_equal(actual, expected)


# ----------------------------------------------------------------------
# Failure model
# ----------------------------------------------------------------------


class TestWorkerCrashFallback:
    def test_discovery_survives_crashing_workers(self, monkeypatch):
        relation = make_random_relation(7)
        baseline = DHyFD().discover(relation)
        monkeypatch.setenv(ENV_FAULT_INJECT, "crash")
        tracer = Tracer()
        with use_tracer(tracer):
            result = DHyFD(jobs=2, **FORCE_PARALLEL).discover(relation)
        assert set(result.fds) == set(baseline.fds)
        assert _stats_signature(result.stats) == _stats_signature(baseline.stats)
        events = tracer.find_events("parallel_fallback")
        assert events
        assert events[0].attrs["jobs"] == 2

    def test_broken_executor_refuses_work(self, monkeypatch):
        relation = make_random_relation(3)
        monkeypatch.setenv(ENV_FAULT_INJECT, "crash")
        with parallel.ParallelExecutor(relation, jobs=2) as executor:
            with pytest.raises(parallel.PoolBrokenError):
                executor.run("validate", [(0, 0, 1, 0, np.zeros(0), np.zeros(0))])
            assert executor.broken
            assert not executor.active

    def test_redundancy_falls_back_serially(self, monkeypatch):
        _force_thresholds(monkeypatch)
        relation = make_random_relation(11)
        cover = list(canonical_cover(DHyFD().discover(relation).fds))
        serial = redundancy_positions(relation, cover, NullPolicy.INCLUDE)
        monkeypatch.setenv(ENV_FAULT_INJECT, "crash")
        parallel_result = redundancy_positions(
            relation, cover, NullPolicy.INCLUDE, jobs=2
        )
        assert np.array_equal(serial, parallel_result)


# ----------------------------------------------------------------------
# Telemetry replay
# ----------------------------------------------------------------------


class TestTelemetryReplay:
    def test_parallel_batches_appear_as_spans(self):
        relation = make_random_relation(7)
        tracer = Tracer()
        with use_tracer(tracer):
            DHyFD(jobs=2, **FORCE_PARALLEL).discover(relation)
        batches = tracer.find_spans("parallel.batch")
        assert batches
        for span in batches:
            assert span.attrs["kind"] in {"validate", "redundancy", "sample"}
            assert span.attrs["items"] >= 1
            assert span.duration is not None

    def test_worker_kernel_counters_are_replayed(self, monkeypatch):
        _force_thresholds(monkeypatch)
        relation = make_random_relation(7)
        cover = list(canonical_cover(DHyFD().discover(relation).fds))
        tracer = Tracer()
        with use_tracer(tracer):
            redundancy_positions(relation, cover, NullPolicy.INCLUDE, jobs=2)
        kernel_counters = [
            name
            for name, counter in tracer.metrics.counters.items()
            if name.startswith("kernels.") and counter.value > 0
        ]
        assert kernel_counters

    def test_record_completed_nests_under_open_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.record_completed("replayed", 0.5, pid=123)
        outer = tracer.find_spans("outer")[0]
        assert [child.name for child in outer.children] == ["replayed"]
        child = outer.children[0]
        assert child.duration == 0.5
        assert child.start >= 0.0
        assert child.attrs == {"pid": 123}
