"""Null-semantics behaviour across the stack (paper §V-B)."""

from __future__ import annotations

import pytest

from repro.algorithms import DHyFD
from repro.relational import attrset
from repro.relational.null import NULL, NullSemantics
from repro.relational.relation import Relation


def fd_tuples(fds):
    return {(tuple(attrset.to_list(f.lhs)), attrset.to_list(f.rhs)[0]) for f in fds}


class TestParse:
    def test_aliases(self):
        assert NullSemantics.parse("eq") is NullSemantics.EQ
        assert NullSemantics.parse("null=null") is NullSemantics.EQ
        assert NullSemantics.parse("NEQ") is NullSemantics.NEQ
        assert NullSemantics.parse("null!=null") is NullSemantics.NEQ
        assert NullSemantics.parse(NullSemantics.EQ) is NullSemantics.EQ

    def test_unknown(self):
        with pytest.raises(ValueError):
            NullSemantics.parse("maybe")


class TestDiscoveryDifferences:
    def make(self, semantics):
        # col0 groups rows; col1 has nulls that agree only under EQ
        rows = [
            ("g", NULL, "a"),
            ("g", NULL, "b"),
            ("h", "v", "c"),
        ]
        return Relation.from_rows(rows, ["grp", "mark", "val"], semantics)

    def test_eq_violates_through_null_cluster(self):
        # under EQ, rows 0,1 agree on grp and mark but differ on val:
        # mark -> val is violated
        rel = self.make("eq")
        fds = fd_tuples(DHyFD().discover(rel).fds)
        assert ((1,), 2) not in fds

    def test_neq_restores_fd(self):
        # under NEQ the two nulls differ, so no pair agrees on mark:
        # mark becomes a key
        rel = self.make("neq")
        fds = fd_tuples(DHyFD().discover(rel).fds)
        assert ((1,), 2) in fds
        assert ((1,), 0) in fds

    def test_neq_never_fewer_fds_on_null_only_differences(self):
        """NEQ shrinks clusters, which can only remove violations for
        FDs whose LHS contains the null column."""
        rows = [
            (NULL, "x"),
            (NULL, "y"),
            ("v", "z"),
        ]
        eq_rel = Relation.from_rows(rows, ["a", "b"], "eq")
        neq_rel = Relation.from_rows(rows, ["a", "b"], "neq")
        eq_fds = fd_tuples(DHyFD().discover(eq_rel).fds)
        neq_fds = fd_tuples(DHyFD().discover(neq_rel).fds)
        assert ((0,), 1) not in eq_fds
        assert ((0,), 1) in neq_fds


class TestTableIExample:
    def test_ncvoter_discovery_under_both_semantics(self):
        """Both semantics run end to end on the null-heavy replica and
        genuinely disagree on which FDs hold."""
        from repro.datasets import ncvoter_like

        rel = ncvoter_like(150, seed=0)
        eq_fds = DHyFD().discover(rel).fds
        neq_fds = DHyFD().discover(rel.with_semantics("neq")).fds
        assert len(eq_fds) > 0
        assert len(neq_fds) > 0
        assert eq_fds != neq_fds
