"""Package-surface contract: exports resolve, CLI surface is stable."""

from __future__ import annotations

import importlib

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_subpackages_importable(self):
        for module in [
            "repro.relational", "repro.partitions", "repro.fdtree",
            "repro.core", "repro.algorithms", "repro.covers",
            "repro.ranking", "repro.datasets", "repro.normalize",
            "repro.incremental", "repro.ucc", "repro.profiling",
            "repro.bench", "repro.cli", "repro.service", "repro.cluster",
            "repro.memplane",
        ]:
            importlib.import_module(module)

    def test_all_sorted_unique(self):
        assert len(repro.__all__) == len(set(repro.__all__))


class TestCliSurface:
    def test_subcommands_present(self):
        from repro.cli import build_parser

        parser = build_parser()
        subparsers = next(
            action for action in parser._actions
            if hasattr(action, "choices") and action.choices
        )
        expected = {
            "discover", "rank", "covers", "report", "normalize",
            "keys", "datasets", "generate", "serve", "submit", "cluster",
        }
        assert expected <= set(subparsers.choices)

    def test_every_algorithm_has_a_registry_name(self):
        from repro.algorithms import algorithm_names, make_algorithm

        for name in algorithm_names():
            algo = make_algorithm(name)
            assert algo.name == name
