"""Smoke tests: the example scripts run end to end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 120.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "canonical cover" in out
        assert "∅ -> state" in out

    def test_voter_profiling_small(self):
        out = run_example("voter_profiling.py", "200")
        assert "minimal LHSs determining `city`" in out
        assert "σ1-style constant FDs" in out

    def test_schema_normalization(self):
        out = run_example("schema_normalization.py")
        assert "3NF synthesis" in out
        assert "lossless join: True" in out

    def test_csv_profiling_small(self):
        out = run_example("csv_profiling.py", "bridges", "60")
        assert "null semantics: null=null" in out
        assert "null semantics: null!=null" in out

    @pytest.mark.slow
    def test_incremental_monitoring(self):
        out = run_example("incremental_monitoring.py", timeout=300.0)
        assert "batch 4" in out

    @pytest.mark.slow
    def test_scalability_study(self):
        out = run_example("scalability_study.py", timeout=600.0)
        assert "row scalability" in out
