"""Unit tests for DIIS column encoding."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.relational.encoding import encode_column, reencode_dense
from repro.relational.null import NULL, NullSemantics


class TestEncodeColumn:
    def test_dense_codes(self):
        col = encode_column(["x", "y", "x", "z"], NullSemantics.EQ)
        assert col.codes.tolist() == [0, 1, 0, 2]
        assert col.cardinality == 3

    def test_decoder_roundtrip(self):
        values = ["b", "a", "b", "c"]
        col = encode_column(values, NullSemantics.EQ)
        decoded = [col.decode(int(c)) for c in col.codes]
        assert decoded == values

    def test_null_mask(self):
        col = encode_column(["x", NULL, "y"], NullSemantics.EQ)
        assert col.null_mask.tolist() == [False, True, False]

    def test_null_eq_shares_one_code(self):
        col = encode_column([NULL, "x", NULL], NullSemantics.EQ)
        assert col.codes[0] == col.codes[2]
        assert col.cardinality == 2

    def test_null_neq_unique_codes(self):
        col = encode_column([NULL, "x", NULL], NullSemantics.NEQ)
        assert col.codes[0] != col.codes[2]
        assert col.cardinality == 3

    def test_null_decodes_to_none(self):
        col = encode_column([NULL, "x"], NullSemantics.EQ)
        assert col.decode(int(col.codes[0])) is None

    def test_codes_within_cardinality(self):
        col = encode_column([NULL, "x", NULL, "y", "x"], NullSemantics.NEQ)
        assert col.codes.max() < col.cardinality
        assert col.codes.min() >= 0

    def test_empty_column(self):
        col = encode_column([], NullSemantics.EQ)
        assert len(col.codes) == 0
        assert col.cardinality == 0

    def test_values_distinct_from_nulls(self):
        # A value equal to the string "None" must not collide with NULL.
        col = encode_column(["None", NULL], NullSemantics.EQ)
        assert col.codes[0] != col.codes[1]

    def test_neq_decoder_covers_every_null_code(self):
        # Regression: the docstring used to claim NEQ null codes are
        # absent from the decoder; encode_column actually appends one
        # None entry per null occurrence.
        col = encode_column([NULL, "x", NULL, "y"], NullSemantics.NEQ)
        assert len(col.decoder) == col.cardinality
        for code in col.codes[col.null_mask].tolist():
            assert col.decode(int(code)) is None
        decoded = [col.decode(int(c)) for c in col.codes]
        assert decoded == [None, "x", None, "y"]


class TestReencodeDense:
    def test_gap_compaction(self):
        dense, n = reencode_dense(np.array([5, 9, 5, 100]))
        assert n == 3
        assert dense.max() == 2
        assert dense[0] == dense[2]
        assert len(set(dense.tolist())) == 3

    @given(st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60))
    def test_equality_preserved(self, values):
        arr = np.array(values)
        dense, n = reencode_dense(arr)
        assert n == len(set(values))
        for i in range(len(values)):
            for j in range(len(values)):
                assert (values[i] == values[j]) == (dense[i] == dense[j])


class TestEncodingProperties:
    @given(
        st.lists(
            st.one_of(st.none(), st.integers(0, 10)), min_size=1, max_size=50
        )
    )
    def test_eq_codes_match_value_equality(self, values):
        col = encode_column(values, NullSemantics.EQ)
        for i in range(len(values)):
            for j in range(len(values)):
                same = values[i] == values[j] or (
                    values[i] is None and values[j] is None
                )
                assert (col.codes[i] == col.codes[j]) == same

    @given(
        st.lists(
            st.one_of(st.none(), st.integers(0, 10)), min_size=1, max_size=50
        )
    )
    def test_neq_nulls_never_match(self, values):
        col = encode_column(values, NullSemantics.NEQ)
        for i in range(len(values)):
            for j in range(len(values)):
                if i == j:
                    continue
                if values[i] is None or values[j] is None:
                    assert col.codes[i] != col.codes[j]
                else:
                    assert (col.codes[i] == col.codes[j]) == (
                        values[i] == values[j]
                    )
