"""Tests for UCC (minimal key) discovery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import DHyFD
from repro.datasets.synthetic import random_relation
from repro.normalize.keys import candidate_keys
from repro.partitions.stripped import StrippedPartition
from repro.relational import attrset
from repro.relational.relation import Relation
from repro.ucc import discover_uccs


def brute_force_uccs(relation):
    """Exhaustive minimal-unique search for small schemas."""
    n = relation.n_cols
    uniques = []
    for mask in sorted(
        attrset.iter_subsets(attrset.full_set(n)), key=attrset.count
    ):
        partition = StrippedPartition.for_attrs(relation, mask)
        if partition.is_key():
            if not any(attrset.is_subset(u, mask) for u in uniques):
                uniques.append(mask)
    return sorted(uniques)


class TestBasics:
    def test_city_relation(self, city_relation):
        result = discover_uccs(city_relation)
        # name is unique; no other singleton is; every other minimal UCC
        # must avoid containing name
        assert attrset.singleton(0) in result.uccs
        for ucc in result.uccs:
            assert ucc == attrset.singleton(0) or not attrset.contains(ucc, 0)
        assert result.uccs == brute_force_uccs(city_relation)

    def test_duplicate_rows_mean_no_uccs(self, duplicate_relation):
        result = discover_uccs(duplicate_relation)
        assert result.uccs == []

    def test_single_row(self):
        rel = Relation.from_rows([("a", "b")])
        assert discover_uccs(rel).uccs == [attrset.EMPTY]

    def test_composite_key_only(self):
        rows = [("a", "x"), ("a", "y"), ("b", "x"), ("b", "y")]
        rel = Relation.from_rows(rows, ["l", "r"])
        result = discover_uccs(rel)
        assert result.uccs == [attrset.from_attrs([0, 1])]

    def test_format(self, city_relation):
        result = discover_uccs(city_relation)
        assert "name" in result.format()[0]

    def test_counters(self, city_relation):
        result = discover_uccs(city_relation)
        assert result.rounds >= 1
        assert result.validations >= len(result.uccs)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_relations(self, seed):
        rel = random_relation(25, 5, domain_sizes=4, seed=seed)
        assert discover_uccs(rel).uccs == brute_force_uccs(rel)

    @pytest.mark.parametrize("seed", range(3))
    def test_with_nulls(self, seed):
        rel = random_relation(20, 4, domain_sizes=3, null_rate=0.2, seed=seed)
        assert discover_uccs(rel).uccs == brute_force_uccs(rel)

    def test_neq_semantics(self):
        rel = random_relation(20, 4, domain_sizes=3, null_rate=0.3, seed=7,
                              semantics="neq")
        assert discover_uccs(rel).uccs == brute_force_uccs(rel)


class TestCrossSubsystem:
    @settings(deadline=None, max_examples=15)
    @given(seed=st.integers(0, 300))
    def test_uccs_equal_candidate_keys_of_discovered_cover(self, seed):
        """Minimal UCCs of a duplicate-free relation are exactly the
        candidate keys implied by its discovered FD cover."""
        rel = random_relation(20, 4, domain_sizes=5, seed=seed)
        uccs = discover_uccs(rel).uccs
        if not uccs:  # duplicate rows drawn — no keys at all
            return
        fds = list(DHyFD().discover(rel).fds)
        keys = candidate_keys(rel.n_cols, fds)
        assert sorted(keys) == sorted(uccs)
