"""Unit tests for approximate FD discovery (g3 / ApproximateTANE)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import ApproximateTANE, NaiveFDDiscovery, g3_error
from repro.datasets.synthetic import planted_fd_relation, random_relation
from repro.relational import attrset
from repro.relational.fd import FD
from repro.relational.relation import Relation


def A(*attrs):
    return attrset.from_attrs(attrs)


class TestG3Error:
    def test_exact_fd_zero_error(self, city_relation):
        assert g3_error(city_relation, A(1), 2) == 0.0  # zip -> city

    def test_violated_fd_error(self, city_relation):
        # city !-> zip: c1 spans z1,z1,z2 -> remove 1 row; others fine
        assert g3_error(city_relation, A(2), 1) == pytest.approx(1 / 6)

    def test_empty_lhs(self):
        rel = Relation.from_rows([("x",), ("x",), ("y",)])
        # make column 0 constant by removing 1 of 3 rows
        assert g3_error(rel, attrset.EMPTY, 0) == pytest.approx(1 / 3)

    def test_key_lhs_zero(self, city_relation):
        assert g3_error(city_relation, A(0), 2) == 0.0

    def test_empty_relation(self):
        rel = Relation.from_rows([("a",)]).project_rows([])
        assert g3_error(rel, attrset.EMPTY, 0) == 0.0


class TestApproximateTANE:
    def test_zero_threshold_matches_exact(self):
        rel = random_relation(40, 5, domain_sizes=3, seed=8)
        exact = NaiveFDDiscovery().discover(rel).fds
        approx = ApproximateTANE(error_threshold=0.0).discover(rel).fds
        assert approx == exact

    def test_recovers_dirty_fd(self):
        # plant 0 -> 1 and then dirty a couple of rows
        rel = planted_fd_relation(120, 4, [([0], 1)], base_domain=6, seed=3)
        rows = [list(r) for r in rel.iter_rows()]
        rows[0][1] = "dirty!"
        dirty = Relation.from_rows(rows, rel.schema)
        exact = NaiveFDDiscovery().discover(dirty).fds
        assert FD(A(0), A(1)) not in exact
        approx = ApproximateTANE(error_threshold=0.05).discover(dirty).fds
        assert FD(A(0), A(1)) in approx

    def test_minimality(self):
        rel = random_relation(50, 5, domain_sizes=3, seed=12)
        result = ApproximateTANE(error_threshold=0.1).discover(rel)
        for fd in result.fds:
            rhs_attr = attrset.to_list(fd.rhs)[0]
            assert g3_error(rel, fd.lhs, rhs_attr) <= 0.1
            for attr in attrset.iter_attrs(fd.lhs):
                reduced = attrset.remove(fd.lhs, attr)
                assert g3_error(rel, reduced, rhs_attr) > 0.1

    def test_threshold_monotone(self):
        rel = random_relation(40, 4, domain_sizes=3, seed=5)
        loose = ApproximateTANE(error_threshold=0.2).discover(rel).fds
        tight = ApproximateTANE(error_threshold=0.02).discover(rel).fds
        # every tight FD is implied by some loose FD with subset LHS
        for fd in tight:
            assert any(
                attrset.is_subset(l.lhs, fd.lhs) and l.rhs == fd.rhs
                for l in loose
            )

    def test_max_lhs_size(self):
        rel = random_relation(30, 5, domain_sizes=2, seed=4)
        result = ApproximateTANE(error_threshold=0.0, max_lhs_size=2).discover(rel)
        assert all(fd.lhs_size <= 2 for fd in result.fds)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ApproximateTANE(error_threshold=-0.1)

    def test_registered(self):
        from repro.algorithms import make_algorithm

        algo = make_algorithm("atane", error_threshold=0.5)
        assert algo.error_threshold == 0.5


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 200), threshold=st.sampled_from([0.0, 0.05, 0.2]))
def test_approximate_soundness_property(seed, threshold):
    """Every reported FD is within the threshold; every exact FD with
    the threshold >= 0 is covered by some reported generalization."""
    rel = random_relation(25, 4, domain_sizes=2, seed=seed)
    result = ApproximateTANE(error_threshold=threshold).discover(rel)
    for fd in result.fds:
        rhs_attr = attrset.to_list(fd.rhs)[0]
        assert g3_error(rel, fd.lhs, rhs_attr) <= threshold + 1e-12
    exact = NaiveFDDiscovery().discover(rel).fds
    for fd in exact:
        assert any(
            attrset.is_subset(approx.lhs, fd.lhs) and approx.rhs == fd.rhs
            for approx in result.fds
        )
