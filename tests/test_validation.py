"""Unit tests for FD validation (Algorithm 4)."""

from __future__ import annotations

import pytest

from repro.core.validation import check_fd, validate_fd
from repro.partitions.stripped import StrippedPartition
from repro.relational import attrset
from repro.relational.fd import FD


def A(*attrs):
    return attrset.from_attrs(attrs)


class TestValidateFd:
    def test_valid_fd(self, city_relation):
        partition = StrippedPartition.for_attribute(city_relation, 1)
        result = validate_fd(city_relation, A(1), A(2, 3), partition)
        assert result.valid_rhs == A(2, 3)
        assert result.non_fd_lhs == set()

    def test_invalid_fd_returns_non_fds(self, city_relation):
        partition = StrippedPartition.for_attribute(city_relation, 2)
        result = validate_fd(city_relation, A(2), A(1), partition)
        assert result.valid_rhs == attrset.EMPTY
        assert result.non_fd_lhs
        for agree in result.non_fd_lhs:
            # every reported agree set contains the LHS (city)
            assert attrset.is_subset(A(2), agree)
            # and never the violated attribute (zip)
            assert not attrset.contains(agree, 1)

    def test_mixed_rhs(self, city_relation):
        partition = StrippedPartition.for_attribute(city_relation, 2)
        result = validate_fd(city_relation, A(2), A(1, 3), partition)
        assert result.valid_rhs == A(3)  # state survives, zip does not

    def test_coarser_partition_refined_on_the_fly(self, city_relation):
        universal = StrippedPartition.universal(city_relation)
        result = validate_fd(city_relation, A(1), A(2), universal)
        assert result.valid_rhs == A(2)

    def test_rejects_non_subset_partition(self, city_relation):
        partition = StrippedPartition.for_attribute(city_relation, 2)
        with pytest.raises(ValueError):
            validate_fd(city_relation, A(1), A(3), partition)

    def test_empty_lhs_constant_column(self, city_relation):
        universal = StrippedPartition.universal(city_relation)
        result = validate_fd(
            city_relation, attrset.EMPTY, city_relation.schema.all_attrs(), universal
        )
        assert result.valid_rhs == A(3)  # only state is constant

    def test_comparisons_counted(self, city_relation):
        universal = StrippedPartition.universal(city_relation)
        result = validate_fd(city_relation, attrset.EMPTY, A(3), universal)
        assert result.comparisons == 5  # pivot vs the 5 other rows

    def test_early_exit_within_chunk(self, city_relation):
        universal = StrippedPartition.universal(city_relation)
        # name (a key) disagrees immediately -> the first chunk settles it
        result = validate_fd(city_relation, attrset.EMPTY, A(0), universal)
        assert result.valid_rhs == attrset.EMPTY
        assert 1 <= result.comparisons <= city_relation.n_rows - 1

    def test_early_exit_skips_later_chunks(self):
        """An FD invalidated in the first chunk of a huge cluster must
        not scan the whole cluster."""
        from repro.relational.relation import Relation

        rows = [("g", str(i)) for i in range(1000)]
        rel = Relation.from_rows(rows, ["grp", "val"])
        universal = StrippedPartition.universal(rel)
        result = validate_fd(rel, attrset.EMPTY, A(1), universal)
        assert result.valid_rhs == attrset.EMPTY
        assert result.comparisons <= 64


class TestCheckFd:
    def test_matches_definition(self, city_relation):
        assert check_fd(city_relation, A(1), A(2))
        assert not check_fd(city_relation, A(2), A(1))
        assert check_fd(city_relation, A(0), A(1, 2, 3))  # name is a key
        assert check_fd(city_relation, attrset.EMPTY, A(3))

    def test_null_semantics_affect_validity(self, null_relation):
        # maybe -> tag holds under EQ (nulls agree, both tagged x)
        assert check_fd(null_relation, A(1), A(2))
        neq = null_relation.with_semantics("neq")
        # under NEQ nulls are unique, so clusters shrink; still holds
        assert check_fd(neq, A(1), A(2))
        # tag -> maybe: x-rows have NULL, NULL -> equal under EQ only
        assert check_fd(null_relation, A(2), A(1))
        assert not check_fd(neq, A(2), A(1))

    def test_duplicates_do_not_violate(self, duplicate_relation):
        assert check_fd(duplicate_relation, A(0), A(1, 2))
