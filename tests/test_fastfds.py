"""Unit tests for FastFDs and minimal hitting sets."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import FastFDs, NaiveFDDiscovery
from repro.algorithms.fastfds import minimal_hitting_sets, minimize_set_family
from repro.core.base import Deadline, TimeLimitExceeded
from repro.datasets.synthetic import random_relation
from repro.relational import attrset

NO_DEADLINE = Deadline(None, "test")


def A(*attrs):
    return attrset.from_attrs(attrs)


class TestMinimizeFamily:
    def test_supersets_dropped(self):
        assert minimize_set_family([A(0, 1), A(0)]) == [A(0)]

    def test_incomparable_kept(self):
        assert set(minimize_set_family([A(0), A(1)])) == {A(0), A(1)}

    def test_duplicates_collapsed(self):
        assert minimize_set_family([A(0), A(0)]) == [A(0)]


class TestMinimalHittingSets:
    def test_empty_family(self):
        assert minimal_hitting_sets([], NO_DEADLINE) == [attrset.EMPTY]

    def test_single_set(self):
        hits = set(minimal_hitting_sets([A(0, 2)], NO_DEADLINE))
        assert hits == {A(0), A(2)}

    def test_disjoint_sets_cross_product(self):
        hits = set(minimal_hitting_sets([A(0, 1), A(2, 3)], NO_DEADLINE))
        assert hits == {A(0, 2), A(0, 3), A(1, 2), A(1, 3)}

    def test_common_attribute(self):
        hits = set(minimal_hitting_sets([A(0, 1), A(0, 2)], NO_DEADLINE))
        assert A(0) in hits
        assert A(1, 2) in hits
        assert A(0, 1) not in hits  # not minimal

    def test_chain(self):
        hits = set(
            minimal_hitting_sets([A(0), A(0, 1), A(0, 1, 2)], NO_DEADLINE)
        )
        assert hits == {A(0)}

    @settings(deadline=None, max_examples=40)
    @given(
        family=st.lists(
            st.integers(1, 63), min_size=1, max_size=6
        )
    )
    def test_hitting_set_properties(self, family):
        hits = minimal_hitting_sets(family, NO_DEADLINE)
        assert hits
        for h in hits:
            # hits everything
            assert all(h & s for s in family)
            # minimal
            for attr in attrset.iter_attrs(h):
                reduced = attrset.remove(h, attr)
                assert not all(reduced & s for s in family)
        # pairwise incomparable
        for left in hits:
            for right in hits:
                if left != right:
                    assert not attrset.is_subset(left, right)

    @settings(deadline=None, max_examples=25)
    @given(family=st.lists(st.integers(1, 31), min_size=1, max_size=5))
    def test_completeness_against_brute_force(self, family):
        hits = set(minimal_hitting_sets(family, NO_DEADLINE))
        brute = set()
        for mask in range(32):
            if all(mask & s for s in family):
                if not any(
                    all((mask & ~attrset.singleton(a)) & s for s in family)
                    for a in attrset.iter_attrs(mask)
                ):
                    brute.add(mask)
        assert hits == brute


class TestFastFDs:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_oracle(self, seed):
        rel = random_relation(30, 5, domain_sizes=2, seed=seed)
        assert FastFDs().discover(rel).fds == NaiveFDDiscovery().discover(rel).fds

    def test_with_nulls_both_semantics(self):
        for semantics in ("eq", "neq"):
            rel = random_relation(
                25, 5, domain_sizes=3, null_rate=0.2, seed=9, semantics=semantics
            )
            assert (
                FastFDs().discover(rel).fds
                == NaiveFDDiscovery().discover(rel).fds
            )

    def test_constant_column(self, city_relation):
        fds = FastFDs().discover(city_relation).fds
        from repro.relational.fd import FD

        assert FD(attrset.EMPTY, A(3)) in fds

    def test_time_limit(self):
        rel = random_relation(300, 8, domain_sizes=2, seed=0)
        with pytest.raises(TimeLimitExceeded):
            FastFDs(time_limit=0.0).discover(rel)

    def test_registered(self):
        from repro.algorithms import make_algorithm

        assert make_algorithm("fastfds").name == "fastfds"
