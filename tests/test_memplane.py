"""repro.memplane: dataset arena, shared partition tier, leak hygiene."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from multiprocessing import get_context, shared_memory

import numpy as np
import pytest

from repro import memplane
from repro.core.dhyfd import DHyFD, _shed_arena
from repro.datasets.synthetic import random_relation
from repro.memplane.arena import SEGMENT_PREFIX, DatasetArena, sweep_orphans
from repro.memplane.tier import MAX_SHARED_ATTRS, SharedPartitionTier
from repro.parallel.pool import ParallelExecutor, PoolBrokenError
from repro.parallel.shm import SharedRelationBuffers, SharedRelationView
from repro.partitions.cache import PartitionCache
from repro.partitions.stripped import StrippedPartition
from repro.ranking.ranker import rank_cover
from repro.relational import attrset
from repro.relational.relation import Relation
from repro.resilience import faults
from repro.service import FDService
from tests.conftest import make_random_relation


def _fd_tuples(fds):
    return sorted((fd.lhs, fd.rhs) for fd in fds)


def _shm_names() -> set:
    try:
        return set(os.listdir("/dev/shm"))
    except FileNotFoundError:  # pragma: no cover — non-tmpfs platforms
        return set()


def _arena_files(owner: str) -> list:
    prefix = f"{SEGMENT_PREFIX}-{owner}-"
    return sorted(n for n in _shm_names() if n.startswith(prefix))


def _same_shape_relations(n: int) -> list:
    """Same dims and domains, different content — equal segment sizes."""
    return [
        random_relation(40, 3, domain_sizes=4, seed=100 + i) for i in range(n)
    ]


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    faults.reset()


@pytest.fixture(autouse=True)
def _memplane_on():
    """Pin the plane on regardless of the CI leg's REPRO_FD_MEMPLANE.

    This suite tests the plane itself, so the env kill switch must not
    blank it out; tests covering the disabled path call
    ``set_enabled(False)`` explicitly (the override wins either way).
    """
    memplane.set_enabled(True)
    yield
    memplane.set_enabled(None)


@pytest.fixture
def fresh_arena():
    """The process-wide arena, fresh before and unlinked after."""
    memplane.reset_arena()
    yield memplane.get_arena()
    memplane.reset_arena()


# ----------------------------------------------------------------------
# Arena lifecycle
# ----------------------------------------------------------------------


class TestDatasetArena:
    def test_lease_roundtrip_and_attach_accounting(self):
        relation = make_random_relation(3)
        with DatasetArena(owner="t-lease") as arena:
            lease_a = arena.lease(relation)
            lease_b = arena.lease(relation)
            assert arena.attach_misses == 1
            assert arena.attach_hits == 1
            assert arena.pins(relation.fingerprint()) == 2
            view = SharedRelationView(lease_a.spec, unregister=True)
            assert np.array_equal(view.matrix(), relation.matrix())
            for attr in range(relation.n_cols):
                assert np.array_equal(
                    view.null_mask(attr), relation.null_mask(attr)
                )
            lease_a.release()
            lease_a.release()  # idempotent
            assert arena.pins(relation.fingerprint()) == 1
            assert arena.shed() == 0  # still pinned
            lease_b.release()
            assert arena.shed() > 0
            assert len(arena) == 0
        assert _arena_files("t-lease") == []

    def test_lease_returns_none_without_fingerprint(self):
        with DatasetArena(owner="t-nofp") as arena:
            assert arena.lease(object()) is None
            assert len(arena) == 0

    def test_eviction_is_lru_and_never_touches_pins(self):
        r1, r2, r3 = _same_shape_relations(3)
        with DatasetArena(owner="t-lru") as arena:
            arena.ingest(r1)
            arena.ingest(r2)
            lease = arena.lease(r3)
            # Refresh r1 so r2 is now the least recently used.
            arena.lease(r1).release()
            arena.shed(arena.memory_bytes() - 1)
            assert r2.fingerprint() not in arena
            assert r1.fingerprint() in arena
            arena.shed(None)  # everything unpinned goes...
            assert r1.fingerprint() not in arena
            assert r3.fingerprint() in arena  # ...the pinned entry stays
            assert arena.evictions == 2
            lease.release()

    def test_byte_budget_enforced_at_ingest(self):
        relations = _same_shape_relations(4)
        with DatasetArena(owner="t-one") as probe:
            probe.ingest(relations[0])
            single = probe.memory_bytes()
        budget = 2 * single + 16
        with DatasetArena(owner="t-budget", budget_bytes=budget) as arena:
            for relation in relations:
                arena.ingest(relation)
            assert arena.memory_bytes() <= budget
            assert len(arena) == 2
            assert arena.evictions == 2

    def test_append_versions_share_parent_segment(self):
        parent = Relation.from_rows(
            [["a", 1], ["b", 2], ["a", 1]], schema=["x", "y"]
        )
        child = parent.append_rows([["c", 3], ["b", 2]])
        with DatasetArena(owner="t-append") as arena:
            arena.ingest(parent)
            assert len(_arena_files("t-append")) == 2
            arena.ingest(child, parent_fingerprint=parent.fingerprint())
            assert arena.prefix_shared == 1
            # The parent's private copy was unlinked; both entries now
            # view the child's one segment pair.
            assert len(_arena_files("t-append")) == 2
            parent_lease = arena.lease(parent)
            child_lease = arena.lease(child)
            assert parent_lease.spec.matrix_name == child_lease.spec.matrix_name
            assert parent_lease.spec.n_rows == parent.n_rows
            assert child_lease.spec.n_rows == child.n_rows
            view = SharedRelationView(parent_lease.spec, unregister=True)
            assert np.array_equal(view.matrix(), parent.matrix())
            parent_lease.release()
            child_lease.release()
        assert _arena_files("t-append") == []

    def test_append_sharing_skipped_while_parent_pinned(self):
        parent = Relation.from_rows([["a", 1], ["b", 2]], schema=["x", "y"])
        child = parent.append_rows([["c", 3]])
        with DatasetArena(owner="t-appin") as arena:
            lease = arena.lease(parent)
            arena.ingest(child, parent_fingerprint=parent.fingerprint())
            # A live lease holds the parent's segment names, so the
            # remap must not happen: two private segment pairs stay.
            assert arena.prefix_shared == 0
            assert len(_arena_files("t-appin")) == 4
            lease.release()
        assert _arena_files("t-appin") == []

    def test_stale_segment_name_is_reclaimed(self):
        relation = make_random_relation(9)
        owner = "t-stale"
        name = f"{SEGMENT_PREFIX}-{owner}-{relation.fingerprint()[:16]}-0m"
        stale = shared_memory.SharedMemory(name=name, create=True, size=8)
        try:
            with DatasetArena(owner=owner) as arena:
                lease = arena.lease(relation)
                assert arena.stale_reclaimed == 1
                view = SharedRelationView(lease.spec, unregister=True)
                assert np.array_equal(view.matrix(), relation.matrix())
                lease.release()
        finally:
            stale.close()
            try:
                stale.unlink()
            except FileNotFoundError:
                pass
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(stale._name, "shared_memory")
            except Exception:
                pass
        assert _arena_files(owner) == []

    def test_concurrent_lease_release_shed_threads(self):
        relations = _same_shape_relations(3)
        errors = []
        stop = threading.Event()
        with DatasetArena(owner="t-race", budget_bytes=1 << 20) as arena:

            def hammer(relation):
                try:
                    while not stop.is_set():
                        lease = arena.lease(relation)
                        view = SharedRelationView(lease.spec, unregister=True)
                        assert np.array_equal(view.matrix(), relation.matrix())
                        lease.release()
                except Exception as exc:  # pragma: no cover — failure path
                    errors.append(exc)

            def shedder():
                while not stop.is_set():
                    arena.shed(0)

            threads = [
                threading.Thread(target=hammer, args=(r,)) for r in relations
            ] + [threading.Thread(target=shedder)]
            for thread in threads:
                thread.start()
            time.sleep(0.5)
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            assert not errors
            arena.shed(None)
            assert arena.memory_bytes() == 0
        assert _arena_files("t-race") == []


def _child_attach(spec, expected_sum):
    view = SharedRelationView(spec)
    sys.exit(0 if int(view.matrix().sum()) == expected_sum else 13)


class TestCrossProcess:
    def test_forked_children_attach_to_leased_segments(self):
        relation = make_random_relation(13)
        with DatasetArena(owner="t-fork") as arena:
            lease = arena.lease(relation)
            ctx = get_context("fork")
            procs = [
                ctx.Process(
                    target=_child_attach,
                    args=(lease.spec, int(relation.matrix().sum())),
                )
                for _ in range(2)
            ]
            for proc in procs:
                proc.start()
            for proc in procs:
                proc.join(timeout=30)
                assert proc.exitcode == 0
            lease.release()
        assert _arena_files("t-fork") == []


# ----------------------------------------------------------------------
# SharedRelationBuffers over the arena
# ----------------------------------------------------------------------


class TestBuffersOverArena:
    def test_buffers_lease_and_release(self, fresh_arena):
        relation = make_random_relation(14)
        first = SharedRelationBuffers(relation)
        second = SharedRelationBuffers(relation)
        assert first.arena_backed and second.arena_backed
        assert first.spec == second.spec  # one copy, two leases
        assert fresh_arena.pins(relation.fingerprint()) == 2
        first.close()
        second.close()
        second.close()  # idempotent
        assert fresh_arena.pins(relation.fingerprint()) == 0
        assert relation.fingerprint() in fresh_arena  # warm for the next job

    def test_disabled_memplane_uses_private_copy(self, fresh_arena):
        relation = make_random_relation(14)
        memplane.set_enabled(False)
        try:
            buffers = SharedRelationBuffers(relation)
            assert not buffers.arena_backed
            assert len(fresh_arena) == 0
            name = buffers.spec.matrix_name.lstrip("/")
            assert name in _shm_names()
            buffers.close()
            assert name not in _shm_names()
        finally:
            memplane.set_enabled(True)

    def test_arena_attach_fault_falls_back_to_private_copy(self, fresh_arena):
        relation = make_random_relation(14)
        faults.activate("arena.attach", times=1)
        buffers = SharedRelationBuffers(relation)
        assert not buffers.arena_backed
        name = buffers.spec.matrix_name.lstrip("/")
        assert name in _shm_names()
        buffers.close()
        assert name not in _shm_names()


class TestPoolLeakHygiene:
    def _one_item(self):
        return [(0, attrset.singleton(0))]

    def test_pool_broken_fault_releases_arena_lease(self, fresh_arena):
        relation = make_random_relation(15)
        executor = ParallelExecutor(relation, jobs=2, retries=0)
        executor.run("redundancy", self._one_item(), extra={"policy": "include"})
        assert executor._buffers is not None and executor._buffers.arena_backed
        assert fresh_arena.pins(relation.fingerprint()) == 1
        faults.activate("pool.broken")
        with pytest.raises(PoolBrokenError):
            executor.run(
                "redundancy", self._one_item(), extra={"policy": "include"}
            )
        assert executor.broken
        assert executor._buffers is None
        assert fresh_arena.pins(relation.fingerprint()) == 0
        executor.close()

    def test_pool_broken_with_memplane_off_unlinks_segments(self):
        relation = make_random_relation(15)
        memplane.set_enabled(False)
        try:
            executor = ParallelExecutor(relation, jobs=2, retries=0)
            executor.run(
                "redundancy", self._one_item(), extra={"policy": "include"}
            )
            assert not executor._buffers.arena_backed
            name = executor._buffers.spec.matrix_name.lstrip("/")
            assert name in _shm_names()
            faults.activate("pool.broken")
            with pytest.raises(PoolBrokenError):
                executor.run(
                    "redundancy", self._one_item(), extra={"policy": "include"}
                )
            assert name not in _shm_names()
            executor.close()
        finally:
            memplane.set_enabled(True)


# ----------------------------------------------------------------------
# Degradation ladder
# ----------------------------------------------------------------------


class TestLadder:
    def test_shed_arena_rung_frees_unpinned_entries(self, fresh_arena):
        relation = make_random_relation(16)
        fresh_arena.ingest(relation)
        assert fresh_arena.memory_bytes() > 0
        assert _shed_arena() > 0
        assert fresh_arena.memory_bytes() == 0
        assert _shed_arena() == 0


# ----------------------------------------------------------------------
# Shared partition tier
# ----------------------------------------------------------------------


class TestSharedTier:
    def test_cache_seeds_consults_and_publishes(self):
        relation = random_relation(60, 4, domain_sizes=3, seed=101)
        tier = SharedPartitionTier(("fp", "eq", "python"))
        cold = PartitionCache(relation, shared=tier)
        assert cold.shared_hits == 0
        assert len(tier) == relation.n_cols  # singletons published
        mask = attrset.from_attrs([0, 1])
        cold.get(mask)
        warm = PartitionCache(relation, shared=tier)
        assert warm.shared_hits == relation.n_cols  # seeded from the tier
        misses_before = warm.misses
        partition = warm.get(mask)
        assert warm.misses == misses_before + 1  # the local miss...
        assert warm.shared_hits == relation.n_cols + 1  # ...hit the tier
        assert partition is cold.peek(mask)  # literally the same object

    def test_tier_ignores_wide_partitions(self):
        relation = random_relation(30, MAX_SHARED_ATTRS + 1, seed=102)
        tier = SharedPartitionTier(("fp", "eq", "python"))
        wide = StrippedPartition.for_attrs(
            relation, attrset.from_attrs(range(MAX_SHARED_ATTRS + 1))
        )
        tier.put(wide)
        assert len(tier) == 0

    def test_tier_for_identity_and_gates(self):
        relation = make_random_relation(18)
        assert memplane.tier_for(relation) is memplane.tier_for(relation)
        assert memplane.tier_for(object()) is None  # no fingerprint
        memplane.set_enabled(False)
        try:
            assert memplane.tier_for(relation) is None
        finally:
            memplane.set_enabled(True)

    def test_ranking_identical_cold_warm_and_disabled(self):
        relation = make_random_relation(19)
        cover = DHyFD().discover(relation).fds
        memplane.reset_tiers()
        cold = rank_cover(relation, cover)
        warm = rank_cover(relation, cover)
        memplane.set_enabled(False)
        try:
            off = rank_cover(relation, cover)
        finally:
            memplane.set_enabled(True)
        reference = [(r.fd, r.redundancy, r.redundancy_excluding_null)
                     for r in cold.ranked]
        for result in (warm, off):
            assert [
                (r.fd, r.redundancy, r.redundancy_excluding_null)
                for r in result.ranked
            ] == reference
        tier = memplane.tier_for(relation)
        assert tier is not None and tier.hits > 0


# ----------------------------------------------------------------------
# Covers are byte-identical: jobs x memplane differential
# ----------------------------------------------------------------------


class TestCoverDifferential:
    @pytest.mark.parametrize("seed", [20, 21])
    def test_jobs_and_memplane_grid_byte_identical(self, seed):
        relation = make_random_relation(seed)
        covers = {}
        try:
            for enabled in (True, False):
                memplane.set_enabled(enabled)
                for jobs in (1, 2):
                    memplane.reset_tiers()
                    memplane.reset_arena()
                    result = DHyFD(jobs=jobs, parallel_min_rows=1).discover(
                        relation
                    )
                    covers[(enabled, jobs)] = _fd_tuples(result.fds)
        finally:
            memplane.set_enabled(True)
            memplane.reset_arena()
        reference = covers[(True, 1)]
        assert all(cover == reference for cover in covers.values())


# ----------------------------------------------------------------------
# Service integration + metrics
# ----------------------------------------------------------------------


class TestServiceIntegration:
    def test_register_ingests_and_metrics_export_gauges(self, fresh_arena):
        with FDService(max_workers=1) as service:
            service.register_rows(
                ["a", "b"], [["x", 1], ["y", 2], ["x", 1]], name="t"
            )
            payload = service.metrics_payload()
            gauges = payload["gauges"]
            assert gauges["memplane.enabled"] == 1.0
            assert gauges["memplane.datasets"] >= 1.0
            assert gauges["memplane.arena_bytes"] > 0
            assert "memplane.tier_hit_rate" in gauges
            assert payload["counters"]["service.registry.arena_ingests"] == 1

    def test_append_through_registry_shares_parent(self, fresh_arena):
        with FDService(max_workers=1) as service:
            service.register_rows(["a", "b"], [["x", 1], ["y", 2]], name="t")
            service.append_rows("t", [["z", 3]])
            assert fresh_arena.prefix_shared == 1
            assert len(fresh_arena) == 2

    def test_disabled_memplane_registers_nothing(self, fresh_arena):
        memplane.set_enabled(False)
        try:
            with FDService(max_workers=1) as service:
                service.register_rows(["a"], [["x"], ["y"]], name="t")
                payload = service.metrics_payload()
                assert len(fresh_arena) == 0
                assert payload["gauges"]["memplane.enabled"] == 0.0
                assert (
                    "service.registry.arena_ingests"
                    not in payload["counters"]
                )
        finally:
            memplane.set_enabled(True)


# ----------------------------------------------------------------------
# Orphan sweeps (crash recovery)
# ----------------------------------------------------------------------


def _subprocess_env(owner: str) -> dict:
    env = dict(os.environ, REPRO_FD_ARENA_OWNER=owner)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ["src", env.get("PYTHONPATH", "")] if p
    )
    return env


class TestOrphanSweep:
    def test_sweep_is_scoped_to_owner(self, tmp_path):
        mine = tmp_path / f"{SEGMENT_PREFIX}-own1-aaaa-0m"
        theirs = tmp_path / f"{SEGMENT_PREFIX}-own2-bbbb-0m"
        other = tmp_path / "psm_unrelated"
        for path in (mine, theirs, other):
            path.write_bytes(b"x")
        assert sweep_orphans("own1", shm_dir=str(tmp_path)) == [mine.name]
        assert not mine.exists()
        assert theirs.exists() and other.exists()
        assert sweep_orphans("", shm_dir=str(tmp_path)) == []
        assert sweep_orphans("own9", shm_dir=str(tmp_path / "missing")) == []

    def test_clean_exit_unlinks_segments(self):
        owner = f"t-exit{os.getpid()}"
        code = (
            "from repro.memplane import get_arena\n"
            "from repro.relational.relation import Relation\n"
            "r = Relation.from_rows([[1, 2], [3, 4]], schema=['a', 'b'])\n"
            "lease = get_arena().lease(r)\n"
        )
        subprocess.run(
            [sys.executable, "-c", code],
            env=_subprocess_env(owner),
            check=True,
            timeout=60,
            cwd="/root/repo",
        )
        assert _arena_files(owner) == []

    def test_sigkill_orphans_are_swept(self):
        owner = f"t-kill{os.getpid()}"
        code = (
            "import time\n"
            "from repro.memplane import get_arena\n"
            "from repro.relational.relation import Relation\n"
            "r = Relation.from_rows([[1, 2], [3, 4]], schema=['a', 'b'])\n"
            "lease = get_arena().lease(r)\n"
            "print('ready', flush=True)\n"
            "time.sleep(60)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", code],
            env=_subprocess_env(owner),
            stdout=subprocess.PIPE,
            text=True,
            cwd="/root/repo",
        )
        try:
            assert proc.stdout.readline().strip() == "ready"
            assert len(_arena_files(owner)) == 2
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait(timeout=30)
            # The replica-restart path: whoever respawns the dead
            # process sweeps its segments first.  The dead process's
            # resource tracker may race us to some of them; either way
            # zero must remain.
            deadline = time.monotonic() + 10
            sweep_orphans(owner)
            while _arena_files(owner) and time.monotonic() < deadline:
                time.sleep(0.1)
                sweep_orphans(owner)
            assert _arena_files(owner) == []
        finally:
            proc.stdout.close()
            if proc.poll() is None:  # pragma: no cover — cleanup path
                proc.kill()
                proc.wait(timeout=10)
