"""Unit tests for 3NF synthesis, BCNF decomposition, and the checks."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.normalize.decompose import (
    Decomposition,
    decompose_bcnf,
    is_lossless_join,
    preserves_dependencies,
    synthesize_3nf,
)
from repro.normalize.forms import check_3nf, check_bcnf
from repro.relational import attrset
from repro.relational.fd import FD
from repro.relational.schema import RelationSchema


def A(*attrs):
    return attrset.from_attrs(attrs)


class TestSynthesize3NF:
    def test_textbook_orders(self):
        # R(order(0), cust(1), cname(2), prod(3), pname(4))
        # order -> cust,prod ; cust -> cname ; prod -> pname
        fds = [FD(A(0), A(1, 3)), FD(A(1), A(2)), FD(A(3), A(4))]
        decomposition = synthesize_3nf(5, fds)
        assert decomposition.covers_schema()
        assert A(0, 1, 3) in decomposition.fragments
        assert A(1, 2) in decomposition.fragments
        assert A(3, 4) in decomposition.fragments

    def test_result_fragments_are_3nf(self):
        fds = [FD(A(0), A(1, 2)), FD(A(1), A(2))]
        decomposition = synthesize_3nf(3, fds)
        # each fragment, with the cover projected onto it, is 3NF; for
        # this classic case the fragments are {0,1} and {1,2}
        assert set(decomposition.fragments) == {A(0, 1), A(1, 2)}

    def test_key_fragment_added(self):
        # only FD: 1 -> 2; key is {0,1}; no fragment contains it
        fds = [FD(A(1), A(2))]
        decomposition = synthesize_3nf(3, fds)
        assert any(
            attrset.is_subset(A(0, 1), f) for f in decomposition.fragments
        )

    def test_no_fds(self):
        decomposition = synthesize_3nf(3, [])
        assert decomposition.fragments == [A(0, 1, 2)]

    def test_orphan_attributes_housed(self):
        # attr 3 appears in no FD
        fds = [FD(A(0), A(1)), FD(A(1), A(2))]
        decomposition = synthesize_3nf(4, fds)
        assert decomposition.covers_schema()

    def test_lossless_and_preserving(self):
        fds = [FD(A(0), A(1, 3)), FD(A(1), A(2)), FD(A(3), A(4))]
        decomposition = synthesize_3nf(5, fds)
        assert is_lossless_join(5, fds, decomposition)
        assert preserves_dependencies(fds, decomposition)

    def test_format(self):
        schema = RelationSchema(["a", "b", "c"])
        decomposition = synthesize_3nf(3, [FD(A(0), A(1, 2))])
        assert decomposition.format(schema) == ["a,b,c"]


class TestDecomposeBCNF:
    def test_classic_zip_example(self):
        # street,city -> zip ; zip -> city (3NF but not BCNF)
        fds = [FD(A(0, 1), A(2)), FD(A(2), A(1))]
        decomposition = decompose_bcnf(3, fds)
        assert decomposition.covers_schema()
        assert A(1, 2) in decomposition.fragments  # zip -> city fragment
        assert is_lossless_join(3, fds, decomposition)
        # the textbook fact: this decomposition loses street,city -> zip
        assert not preserves_dependencies(fds, decomposition)

    def test_already_bcnf_untouched(self):
        fds = [FD(A(0), A(1, 2))]
        decomposition = decompose_bcnf(3, fds)
        assert decomposition.fragments == [A(0, 1, 2)]

    def test_chain_decomposition(self):
        fds = [FD(A(0), A(1)), FD(A(1), A(2))]
        decomposition = decompose_bcnf(3, fds)
        assert decomposition.covers_schema()
        assert is_lossless_join(3, fds, decomposition)
        for fragment in decomposition.fragments:
            assert attrset.count(fragment) <= 2


class TestLosslessJoin:
    def test_binary_lossless(self):
        # R = {0,1,2}, 1 -> 2: split into {0,1} and {1,2} is lossless
        fds = [FD(A(1), A(2))]
        decomposition = Decomposition(3, [A(0, 1), A(1, 2)])
        assert is_lossless_join(3, fds, decomposition)

    def test_binary_lossy(self):
        # no FDs: splitting on a non-key overlap is lossy
        decomposition = Decomposition(3, [A(0, 1), A(1, 2)])
        assert not is_lossless_join(3, [], decomposition)

    def test_disjoint_fragments_lossy(self):
        fds = [FD(A(0), A(1))]
        decomposition = Decomposition(3, [A(0, 1), A(2)])
        assert not is_lossless_join(3, fds, decomposition)

    def test_full_schema_always_lossless(self):
        decomposition = Decomposition(3, [A(0, 1, 2)])
        assert is_lossless_join(3, [], decomposition)


class TestPreservation:
    def test_preserved(self):
        fds = [FD(A(0), A(1)), FD(A(1), A(2))]
        decomposition = Decomposition(3, [A(0, 1), A(1, 2)])
        assert preserves_dependencies(fds, decomposition)

    def test_transitive_preservation(self):
        """An FD can be preserved jointly even if no fragment holds it."""
        # 0 -> 2 is implied by 0 -> 1 and 1 -> 2 across fragments
        fds = [FD(A(0), A(1)), FD(A(1), A(2)), FD(A(0), A(2))]
        decomposition = Decomposition(3, [A(0, 1), A(1, 2)])
        assert preserves_dependencies(fds, decomposition)

    def test_not_preserved(self):
        fds = [FD(A(0, 1), A(2)), FD(A(2), A(1))]
        decomposition = Decomposition(3, [A(0, 2), A(1, 2)])
        assert not preserves_dependencies(fds, decomposition)


@settings(deadline=None, max_examples=20)
@given(seed=st.integers(0, 200))
def test_3nf_synthesis_properties_on_discovered_covers(seed):
    """Synthesis from any discovered cover is lossless and preserving."""
    from repro.algorithms import DHyFD
    from repro.datasets.synthetic import random_relation

    rel = random_relation(25, 5, domain_sizes=3, seed=seed)
    fds = list(DHyFD().discover(rel).fds)
    decomposition = synthesize_3nf(5, fds)
    assert decomposition.covers_schema()
    assert is_lossless_join(5, fds, decomposition)
    assert preserves_dependencies(fds, decomposition)
