"""Tests for repro.cluster: topology, router, failover, retries, drain.

The acceptance bar (ISSUE 6): routing is deterministic across router
restarts; covers served *through the router* are byte-identical to a
direct in-process ``discover()``; killing one replica leaves the other
shards serving while the dead shard answers 503 (never hangs); the
client retries transient transport failures with backoff; SIGTERM
drain refuses new jobs with 503 + Retry-After while finishing accepted
ones; and ``/metrics`` carries scheduler gauges.

The replica "fleet" here is in-process: real ``ServiceHTTPServer``
instances on daemon threads behind a real :class:`Router` event loop —
every byte still travels through HTTP sockets, only the process
boundary is elided (the subprocess path is covered by
``benchmarks/smoke_cluster.py`` and the CI cluster leg).
"""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.algorithms.registry import make_algorithm
from repro.cluster import (
    Router,
    RoutingTable,
    merge_health,
    merge_metrics,
    shard_for,
    upload_fingerprint,
)
from repro.relational.fd_io import cover_to_json
from repro.relational.relation import Relation
from repro.service import (
    FDService,
    SchedulerDraining,
    ServiceClient,
    ServiceError,
    start_in_thread,
)

ROWS = [
    ("ann", "z1", "c1", "nc"),
    ("bob", "z1", "c1", "nc"),
    ("cat", "z2", "c1", "nc"),
    ("dan", "z3", "c2", "nc"),
    ("eve", "z3", "c2", "nc"),
    ("fay", "z4", "c3", "nc"),
]
COLUMNS = ["name", "zip", "city", "state"]


def make_relation(extra=()):
    return Relation.from_rows(list(ROWS) + list(extra), schema=list(COLUMNS))


def direct_cover_json(relation, algorithm="dhyfd"):
    result = make_algorithm(algorithm).discover(relation)
    return cover_to_json(result.fds, relation.schema)


class InThreadCluster:
    """Two real HTTP replicas behind a real router, all in one process."""

    def __init__(self, tmp_path, n=2):
        self.services = []
        self.servers = []
        self.endpoints = []
        for _ in range(n):
            service = FDService(max_workers=2)
            server, _ = start_in_thread(service)
            self.services.append(service)
            self.servers.append(server)
            self.endpoints.append(f"http://127.0.0.1:{server.server_port}")
        self.router = Router(
            lambda: list(self.endpoints),
            routes_path=tmp_path / "routes.json",
            fanout_timeout=3.0,
        )
        self.router.start()

    def kill(self, shard):
        """Take one replica fully down (socket closed ⇒ ECONNREFUSED)."""
        self.servers[shard].shutdown()
        self.servers[shard].server_close()
        self.services[shard].close()
        self.endpoints[shard] = None

    def close(self):
        self.router.shutdown()
        for shard, server in enumerate(self.servers):
            if self.endpoints[shard] is not None:
                server.shutdown()
                server.server_close()
                self.services[shard].close()


@pytest.fixture
def cluster(tmp_path):
    c = InThreadCluster(tmp_path)
    yield c
    c.close()


@pytest.fixture
def client(cluster):
    return ServiceClient(cluster.router.url, timeout=30.0, retries=1, backoff=0.05)


# ----------------------------------------------------------------------
# Topology: deterministic shard placement
# ----------------------------------------------------------------------


class TestTopology:
    def test_shard_for_is_stable_constants(self):
        # Pinned values: placement must survive interpreter restarts
        # (unlike builtin hash()) and refactors of shard_for itself —
        # moving a fingerprint silently strands its replica's state.
        assert shard_for("alpha", 2) == 0
        assert shard_for("beta", 2) == 1
        assert shard_for("alpha", 4) == 2
        for ref in ("alpha", "beta", "x" * 64):
            assert shard_for(ref, 3) == shard_for(ref, 3)
            assert 0 <= shard_for(ref, 3) < 3

    def test_routing_table_pins_persist_across_restart(self, tmp_path):
        path = tmp_path / "routes.json"
        table = RoutingTable(2, path=path)
        hashed = shard_for("fp-child", 2)
        pinned_shard = 1 - hashed  # force a pin that disagrees with the hash
        table.pin("fp-child", pinned_shard)
        assert table.shard_of("fp-child") == pinned_shard

        reloaded = RoutingTable(2, path=path)
        assert reloaded.shard_of("fp-child") == pinned_shard
        assert reloaded.shard_of("never-pinned") == shard_for("never-pinned", 2)

    def test_pin_agreeing_with_hash_is_elided(self, tmp_path):
        table = RoutingTable(2, path=tmp_path / "routes.json")
        ref = "some-ref"
        table.pin(ref, shard_for(ref, 2))
        assert table.pinned() == {}

    def test_table_rejects_mismatched_shard_count(self, tmp_path):
        path = tmp_path / "routes.json"
        table = RoutingTable(2, path=path)
        table.pin("fp", 1 - shard_for("fp", 2))
        with pytest.raises(ValueError):
            RoutingTable(3, path=path)

    def test_upload_fingerprint_matches_registry(self):
        relation = make_relation()
        body = {"columns": COLUMNS, "rows": [list(r) for r in ROWS]}
        assert upload_fingerprint(body) == relation.fingerprint()

    def test_upload_fingerprint_csv_matches(self):
        relation = make_relation()
        csv_text = "\n".join(
            [",".join(COLUMNS)] + [",".join(row) for row in ROWS]
        )
        assert upload_fingerprint({"csv": csv_text}) == relation.fingerprint()


# ----------------------------------------------------------------------
# Routing through a live router
# ----------------------------------------------------------------------


class TestRouting:
    def test_cover_through_router_matches_direct(self, cluster, client):
        relation = make_relation()
        expected = direct_cover_json(relation)
        info = client.upload_rows(COLUMNS, [list(r) for r in ROWS])
        assert info["fingerprint"] == relation.fingerprint()

        status = client.discover(info["fingerprint"], config={"algorithm": "dhyfd"})
        assert status["status"] == "done"
        result = ServiceClient.result_from_status(status)
        assert cover_to_json(result.fds, result.schema) == expected

    def test_top_k_query_param_proxied_through_router(self, cluster, client):
        """The router must forward ``?top_k=`` untouched: dropping the
        query string would silently serve the full cover."""
        info = client.upload_rows(COLUMNS, [list(r) for r in ROWS], name="city")
        full = ServiceClient.result_from_status(
            client.discover(info["fingerprint"])
        )
        topk = ServiceClient.result_from_status(
            client.discover(info["fingerprint"], top_k=3)
        )
        assert topk.top_k == 3
        assert topk.fd_count == min(3, full.fd_count)
        ranked = client.rank(info["fingerprint"], top_k=2)
        assert ranked["status"] == "done"
        assert len(ranked["ranking"]) == 2

    def test_upload_lands_on_hashed_shard(self, cluster, client):
        relation = make_relation()
        shard = shard_for(relation.fingerprint(), 2)
        client.upload_rows(COLUMNS, [list(r) for r in ROWS], name="city")
        assert len(cluster.services[shard].registry) == 1
        assert len(cluster.services[1 - shard].registry) == 0

    def test_job_ids_carry_shard_namespace(self, cluster, client):
        relation = make_relation()
        shard = shard_for(relation.fingerprint(), 2)
        info = client.upload_rows(COLUMNS, [list(r) for r in ROWS])
        status = client.discover(info["fingerprint"], config={})
        assert status["job_id"].startswith(f"s{shard}:")
        # The namespaced id round-trips through /jobs/<id>.
        assert client.status(status["job_id"])["status"] == "done"

    def test_append_routes_to_parent_shard(self, cluster, client):
        parent = make_relation()
        info = client.upload_rows(COLUMNS, [list(r) for r in ROWS], name="city")
        home = shard_for(parent.fingerprint(), 2)

        appended = client.append(info["fingerprint"], [("gil", "z5", "c4", "nc")])
        # Wherever the child fingerprint hashes, it must be registered
        # on the parent's shard (the append executed there).
        child_entry = cluster.services[home].registry.get(appended["fingerprint"])
        assert child_entry.parent == parent.fingerprint()
        # And follow-up requests for the child route there too.
        status = client.discover(appended["fingerprint"], config={})
        assert status["status"] == "done"
        assert status["job_id"].startswith(f"s{home}:")

    def test_routing_survives_router_restart(self, cluster, client, tmp_path):
        """Same routes.json ⇒ a new router sends requests to the same shards."""
        info = client.upload_rows(COLUMNS, [list(r) for r in ROWS], name="city")
        appended = client.append(info["fingerprint"], [("gil", "z5", "c4", "nc")])
        home = shard_for(make_relation().fingerprint(), 2)

        second = Router(
            lambda: list(cluster.endpoints),
            routes_path=tmp_path / "routes.json",
            fanout_timeout=3.0,
        )
        second.start()
        try:
            client2 = ServiceClient(second.url, timeout=30.0)
            for ref in (info["fingerprint"], appended["fingerprint"], "city"):
                status = client2.discover(ref, config={})
                assert status["status"] == "done"
                assert status["job_id"].startswith(f"s{home}:")
        finally:
            second.shutdown()

    def test_fanout_merges_health_and_metrics(self, cluster, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["shards"] == 2 and health["healthy"] == 2

        client.upload_rows(COLUMNS, [list(r) for r in ROWS])
        metrics = client.metrics()
        assert "cluster.queue_depth" in metrics["gauges"]
        assert "cluster.worker_utilization" in metrics["gauges"]
        registered = metrics["counters"]["cluster.service.registry.registered"]
        assert registered == 1

    def test_datasets_listing_reports_owning_replica(self, cluster, client):
        relation = make_relation()
        shard = shard_for(relation.fingerprint(), 2)
        client.upload_rows(COLUMNS, [list(r) for r in ROWS], name="city")
        listing = client.datasets()
        assert len(listing) == 1
        assert listing[0]["replica"] == f"replica-{shard}"

    def test_unknown_job_id_not_routable(self, cluster, client):
        with pytest.raises(ServiceError) as err:
            client.status("no-shard-prefix")
        assert err.value.status == 404


# ----------------------------------------------------------------------
# Failover: a dead shard degrades, never hangs
# ----------------------------------------------------------------------


class TestFailover:
    def test_dead_shard_503_other_shard_serves(self, cluster, tmp_path):
        client = ServiceClient(cluster.router.url, timeout=30.0, retries=0)
        # One dataset per shard, discovered once while both are up.
        per_shard = {}
        extra = 0
        while len(per_shard) < 2:
            relation = make_relation(
                [(f"x{i}", f"z{9 + i}", "c9", "nc") for i in range(extra)]
            )
            per_shard.setdefault(shard_for(relation.fingerprint(), 2), relation)
            extra += 1
        for relation in per_shard.values():
            info = client.upload_rows(COLUMNS, [list(r) for r in relation.iter_rows()])
            assert client.discover(info["fingerprint"], config={})["status"] == "done"

        cluster.kill(0)

        start = time.monotonic()
        with pytest.raises(ServiceError) as err:
            client.discover(per_shard[0].fingerprint(), config={})
        elapsed = time.monotonic() - start
        assert err.value.status == 503
        assert err.value.retry_after is not None
        assert elapsed < 5.0, f"dead shard took {elapsed:.1f}s — must not hang"

        # The surviving shard is untouched: cached cover, served fast.
        status = client.discover(per_shard[1].fingerprint(), config={})
        assert status["status"] == "done"
        assert status["cached"] is True

    def test_health_degrades_without_hanging(self, cluster):
        client = ServiceClient(cluster.router.url, timeout=30.0, retries=0)
        cluster.kill(1)
        start = time.monotonic()
        health = client.health()
        assert time.monotonic() - start < 5.0
        assert health["status"] == "degraded"
        assert health["healthy"] == 1
        assert health["replicas"]["replica-1"] == {"status": "down"}


# ----------------------------------------------------------------------
# Merge helpers (pure functions)
# ----------------------------------------------------------------------


class TestMergers:
    def test_merge_health_all_down(self):
        merged = merge_health([None, None])
        assert merged["status"] == "down" and merged["healthy"] == 0

    def test_merge_metrics_sums_and_prefixes(self):
        shard = {
            "counters": {"service.discovery.runs": 2},
            "gauges": {"queue_depth": 1, "worker_utilization": 0.5},
        }
        merged = merge_metrics([shard, shard, None])
        counters, gauges = merged["counters"], merged["gauges"]
        assert counters["cluster.service.discovery.runs"] == 4
        assert counters["replica-0.service.discovery.runs"] == 2
        assert gauges["cluster.queue_depth"] == 2
        assert merged["cluster"] == {"replicas": 3, "healthy": 2}


# ----------------------------------------------------------------------
# Client retries
# ----------------------------------------------------------------------


class TestClientRetries:
    def _ok_response(self, payload):
        # BytesIO is already a context manager; the client only read()s.
        return io.BytesIO(json.dumps(payload).encode())

    def test_connection_refused_retried_then_succeeds(self, monkeypatch):
        calls = []

        def fake_urlopen(request, timeout=None):
            calls.append(time.monotonic())
            if len(calls) < 3:
                raise urllib.error.URLError(ConnectionRefusedError(111, "refused"))
            return self._ok_response({"status": "ok"})

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        client = ServiceClient("http://127.0.0.1:9", retries=3, backoff=0.01)
        assert client.health() == {"status": "ok"}
        assert len(calls) == 3
        # Exponential backoff: the second gap is at least as long.
        assert calls[2] - calls[1] >= (calls[1] - calls[0]) * 0.5

    def test_retries_exhausted_raises_retryable_error(self, monkeypatch):
        def fake_urlopen(request, timeout=None):
            raise urllib.error.URLError(ConnectionResetError(104, "reset"))

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        client = ServiceClient("http://127.0.0.1:9", retries=2, backoff=0.01)
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.retryable is True

    def test_non_retryable_http_error_fails_fast(self, monkeypatch):
        calls = []

        def fake_urlopen(request, timeout=None):
            calls.append(1)
            raise urllib.error.HTTPError(
                request.full_url, 404, "not found", {}, io.BytesIO(b"{}")
            )

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        client = ServiceClient("http://127.0.0.1:9", retries=3, backoff=0.01)
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 404
        assert calls == [1]

    def test_503_retried_honoring_retry_after(self, monkeypatch):
        calls = []

        def fake_urlopen(request, timeout=None):
            calls.append(time.monotonic())
            if len(calls) == 1:
                raise urllib.error.HTTPError(
                    request.full_url,
                    503,
                    "draining",
                    {"Retry-After": "0.05"},
                    io.BytesIO(b'{"error": "draining"}'),
                )
            return self._ok_response({"status": "ok"})

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        client = ServiceClient("http://127.0.0.1:9", retries=2, backoff=0.0)
        assert client.health() == {"status": "ok"}
        assert calls[1] - calls[0] >= 0.04

    def test_append_never_retries_connection_errors(self, monkeypatch):
        """Append is not idempotent: a connection reset after delivery
        is ambiguous, and replaying would apply the rows twice."""
        calls = []

        def fake_urlopen(request, timeout=None):
            calls.append(1)
            raise urllib.error.URLError(ConnectionResetError(104, "reset"))

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        client = ServiceClient("http://127.0.0.1:9", retries=3, backoff=0.01)
        with pytest.raises(ServiceError) as err:
            client.append("city", [["gus", "z1", "c9", "nc"]])
        assert err.value.retryable is True
        assert calls == [1]

    def test_append_still_retries_503(self, monkeypatch):
        """A 503 is pre-execution by contract (draining replica refused
        the job), so retrying an append after one is safe."""
        calls = []

        def fake_urlopen(request, timeout=None):
            calls.append(1)
            if len(calls) == 1:
                raise urllib.error.HTTPError(
                    request.full_url,
                    503,
                    "draining",
                    {"Retry-After": "0.01"},
                    io.BytesIO(b'{"error": "draining"}'),
                )
            return self._ok_response({"fingerprint": "fp", "n_rows": 7})

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        client = ServiceClient("http://127.0.0.1:9", retries=2, backoff=0.0)
        info = client.append("city", [["gus", "z1", "c9", "nc"]])
        assert info["n_rows"] == 7
        assert len(calls) == 2

    def test_idempotent_post_still_retries_connection_errors(self, monkeypatch):
        """Discover/rank submissions stay retryable: they are idempotent
        by cache key, so a replay cannot corrupt state."""
        calls = []

        def fake_urlopen(request, timeout=None):
            calls.append(1)
            if len(calls) == 1:
                raise urllib.error.URLError(ConnectionRefusedError(111, "refused"))
            return self._ok_response({"status": "done", "job_id": "s0:1"})

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        client = ServiceClient("http://127.0.0.1:9", retries=2, backoff=0.01)
        assert client.discover("city")["status"] == "done"
        assert len(calls) == 2

    def test_zero_retries_disables_looping(self, monkeypatch):
        calls = []

        def fake_urlopen(request, timeout=None):
            calls.append(1)
            raise urllib.error.URLError(ConnectionRefusedError(111, "refused"))

        monkeypatch.setattr(urllib.request, "urlopen", fake_urlopen)
        client = ServiceClient("http://127.0.0.1:9", retries=0)
        with pytest.raises(ServiceError):
            client.health()
        assert calls == [1]


# ----------------------------------------------------------------------
# Graceful drain + scheduler gauges
# ----------------------------------------------------------------------


class TestDrainAndGauges:
    def test_drain_refuses_new_finishes_inflight(self):
        service = FDService(max_workers=1)
        try:
            service.register_rows(COLUMNS, [list(r) for r in ROWS], name="city")
            release = threading.Event()
            entered = threading.Event()

            original = service._execute

            def slow_execute(job):
                entered.set()
                release.wait(timeout=10.0)
                original(job)

            service.scheduler._executor = slow_execute
            job = service.submit("city")
            assert entered.wait(timeout=5.0)

            done = {}
            drainer = threading.Thread(
                target=lambda: done.setdefault("ok", service.drain(timeout=10.0))
            )
            drainer.start()
            time.sleep(0.05)
            with pytest.raises(SchedulerDraining):
                service.submit("city", config={"algorithm": "fastfds"})
            release.set()
            drainer.join(timeout=10.0)
            assert done["ok"] is True
            assert service.scheduler.wait(job.job_id, timeout=5.0).status == "done"
        finally:
            release.set()
            service.close()

    def test_drain_times_out_on_stuck_job(self):
        service = FDService(max_workers=1)
        try:
            service.register_rows(COLUMNS, [list(r) for r in ROWS], name="city")
            release = threading.Event()

            def stuck_execute(job):
                release.wait(timeout=30.0)

            service.scheduler._executor = stuck_execute
            service.submit("city")
            assert service.drain(timeout=0.2) is False
        finally:
            release.set()
            service.close()

    def test_draining_maps_to_http_503_with_retry_after(self, tmp_path):
        service = FDService(max_workers=1)
        server, _ = start_in_thread(service)
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{server.server_port}", retries=0
            )
            client.upload_rows(COLUMNS, [list(r) for r in ROWS], name="city")
            service.scheduler.drain(timeout=0.1)
            with pytest.raises(ServiceError) as err:
                client.discover("city", config={})
            assert err.value.status == 503
            assert err.value.retry_after is not None
        finally:
            server.shutdown()
            server.server_close()
            service.close()

    def test_gauges_in_metrics_payload(self):
        with FDService(max_workers=2) as service:
            gauges = service.metrics_payload()["gauges"]
            assert gauges["queue_depth"] == 0
            assert gauges["in_flight"] == 0
            assert gauges["worker_utilization"] == 0.0
            # Gauges are numeric so the cluster merge can sum them.
            assert gauges["draining"] == 0

    def test_utilization_reflects_running_jobs(self):
        with FDService(max_workers=2) as service:
            service.register_rows(COLUMNS, [list(r) for r in ROWS], name="city")
            release = threading.Event()
            entered = threading.Event()

            def slow_execute(job):
                entered.set()
                release.wait(timeout=10.0)

            service.scheduler._executor = slow_execute
            service.submit("city")
            assert entered.wait(timeout=5.0)
            gauges = service.scheduler.gauges()
            assert gauges["in_flight"] == 1
            assert gauges["worker_utilization"] == 0.5
            release.set()
