"""Per-algorithm behaviour tests (beyond cross-algorithm agreement)."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    DHyFD,
    FDEP,
    FDEP1,
    FDEP2,
    HyFD,
    NaiveFDDiscovery,
    TANE,
    algorithm_names,
    make_algorithm,
)
from repro.core.base import TimeLimitExceeded
from repro.datasets.synthetic import constant_column_relation, random_relation
from repro.relational import attrset
from repro.relational.fd import FD
from repro.relational.relation import Relation

ALL_ALGORITHMS = ["naive", "tane", "fdep", "fdep1", "fdep2", "hyfd", "dhyfd"]


def fd_tuples(fds):
    return {(tuple(attrset.to_list(f.lhs)), attrset.to_list(f.rhs)[0]) for f in fds}


class TestRegistry:
    def test_names(self):
        assert set(ALL_ALGORITHMS) <= set(algorithm_names())

    def test_make_algorithm(self):
        assert isinstance(make_algorithm("tane"), TANE)
        assert isinstance(make_algorithm("dhyfd"), DHyFD)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_algorithm("nope")

    def test_kwargs_forwarded(self):
        algo = make_algorithm("dhyfd", ratio_threshold=5.0)
        assert algo.ratio_threshold == 5.0


@pytest.mark.parametrize("name", ALL_ALGORITHMS)
class TestCommonBehaviour:
    def test_city_relation_exact(self, name, city_relation):
        """Hand-verified cover of the fixture relation."""
        result = make_algorithm(name).discover(city_relation)
        got = fd_tuples(result.fds)
        # name (0) is a key; zip (1) -> city (2); state (3) constant.
        expected = {
            ((), 3),
            ((0,), 1),
            ((0,), 2),
            ((1,), 2),
            ((1, 2), 0),  # zip+city pin down the single z2/c3-ish rows?
        }
        # compute the precise expectation from the oracle instead of
        # hand-listing borderline accidental FDs:
        oracle = fd_tuples(NaiveFDDiscovery().discover(city_relation).fds)
        assert got == oracle
        assert {((), 3), ((0,), 1), ((1,), 2)} <= got

    def test_single_row(self, name):
        rel = Relation.from_rows([("a", "b")])
        result = make_algorithm(name).discover(rel)
        # every column is constant on a single row
        assert fd_tuples(result.fds) == {((), 0), ((), 1)}

    def test_single_column_constant(self, name):
        rel = Relation.from_rows([("x",), ("x",)])
        result = make_algorithm(name).discover(rel)
        assert fd_tuples(result.fds) == {((), 0)}

    def test_single_column_varying(self, name):
        rel = Relation.from_rows([("x",), ("y",)])
        result = make_algorithm(name).discover(rel)
        assert len(result.fds) == 0

    def test_constant_columns(self, name):
        rel = constant_column_relation(15, 4, [1, 3], seed=2)
        result = make_algorithm(name).discover(rel)
        got = fd_tuples(result.fds)
        assert ((), 1) in got
        assert ((), 3) in got

    def test_result_metadata(self, name, city_relation):
        result = make_algorithm(name).discover(city_relation)
        assert result.algorithm == name
        assert result.elapsed_seconds >= 0
        assert result.schema == city_relation.schema

    def test_output_is_left_reduced(self, name):
        rel = random_relation(40, 5, domain_sizes=3, seed=11)
        result = make_algorithm(name).discover(rel)
        from repro.core.validation import check_fd

        for fd in result.fds:
            assert check_fd(rel, fd.lhs, fd.rhs)
            for attr in attrset.iter_attrs(fd.lhs):
                reduced = attrset.remove(fd.lhs, attr)
                assert not check_fd(rel, reduced, fd.rhs), (
                    f"{name}: {fd} is not left-reduced"
                )


class TestTimeLimit:
    def test_fdep_times_out(self):
        rel = random_relation(400, 8, domain_sizes=3, seed=0)
        with pytest.raises(TimeLimitExceeded):
            FDEP(time_limit=0.0).discover(rel)

    def test_tane_times_out(self):
        rel = random_relation(200, 8, domain_sizes=2, seed=0)
        with pytest.raises(TimeLimitExceeded):
            TANE(time_limit=0.0).discover(rel)

    def test_no_limit_by_default(self, city_relation):
        result = DHyFD().discover(city_relation)
        assert result.fd_count >= 3


class TestDHyFDSpecifics:
    def test_ratio_threshold_does_not_change_output(self):
        rel = random_relation(60, 6, domain_sizes=3, seed=4)
        low = DHyFD(ratio_threshold=0.1).discover(rel)
        high = DHyFD(ratio_threshold=100.0).discover(rel)
        assert low.fds == high.fds

    def test_ddm_ablation_same_output(self):
        rel = random_relation(60, 6, domain_sizes=3, seed=4)
        on = DHyFD().discover(rel)
        off = DHyFD(enable_ddm_updates=False).discover(rel)
        assert on.fds == off.fds
        assert off.stats.partition_refreshes == 0

    def test_sampling_ablation_same_output(self):
        rel = random_relation(60, 6, domain_sizes=3, seed=4)
        sampled = DHyFD().discover(rel)
        unsampled = DHyFD(enable_initial_sampling=False).discover(rel)
        assert sampled.fds == unsampled.fds
        assert unsampled.stats.sampled_non_fds == 0

    def test_level_log_recorded(self):
        rel = random_relation(50, 5, domain_sizes=2, seed=9)
        result = DHyFD().discover(rel)
        assert result.stats.levels_processed >= 1
        assert len(result.stats.level_log) == result.stats.levels_processed


class TestHyFDSpecifics:
    def test_thresholds_do_not_change_output(self):
        rel = random_relation(60, 6, domain_sizes=3, seed=4)
        eager = HyFD(sample_efficiency_threshold=1.0).discover(rel)
        lazy = HyFD(sample_efficiency_threshold=0.0).discover(rel)
        assert eager.fds == lazy.fds

    def test_switch_counter(self):
        rel = random_relation(80, 7, domain_sizes=2, seed=1)
        result = HyFD(invalid_switch_threshold=0.0).discover(rel)
        assert result.stats.strategy_switches >= 0


class TestFDEPVariants:
    def test_negative_cover_size_recorded(self, city_relation):
        for cls in (FDEP, FDEP1, FDEP2):
            result = cls().discover(city_relation)
            assert result.stats.sampled_non_fds > 0

    def test_fdep1_fewer_inductions_than_fdep2(self):
        rel = random_relation(50, 6, domain_sizes=2, seed=7)
        ind1 = FDEP1().discover(rel).stats.induction_calls
        ind2 = FDEP2().discover(rel).stats.induction_calls
        assert ind1 <= ind2
