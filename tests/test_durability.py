"""Tests for the durable job plane (ISSUE 9).

Covers the :mod:`repro.service.journal` WAL (framing, replay,
torn-tail truncation, compaction, fault injection), scheduler crash
recovery (requeued / resumed / lost / completed), checkpoint/resume
determinism (resumed DHyFD runs produce byte-identical covers), and
the service-level wiring: journal kill switch, idempotent submits,
and end-to-end recovery through :class:`FDService`.
"""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.algorithms.registry import make_algorithm
from repro.core.base import CHECKPOINT_FORMAT, CHECKPOINT_VERSION
from repro.relational.fd_io import cover_to_json
from repro.relational.null import NullSemantics
from repro.resilience import faults
from repro.service import FDService, JobConfig, JobScheduler, ServiceClient, start_in_thread
from repro.service.journal import (
    WAL_FILENAME,
    JobJournal,
    atomic_write_text,
    journal_enabled_by_env,
)
from repro.service.scheduler import DONE, LOST, QUEUED

from .conftest import make_random_relation


@pytest.fixture(autouse=True)
def _fault_isolation(monkeypatch):
    monkeypatch.delenv(faults.ENV_FAULTS, raising=False)
    faults.reset()
    yield
    faults.reset()


def payload_without_timing(result, include_stats=True):
    """A result payload with the wall-clock noise stripped.

    ``elapsed_seconds``/``peak_memory_bytes`` vary run to run; a
    resumed run also legitimately reports different stats (it skipped
    work), so resume comparisons drop the stats block too.
    """
    payload = result.to_payload()
    payload.pop("elapsed_seconds", None)
    stats = payload.get("stats")
    if isinstance(stats, dict):
        stats.pop("peak_memory_bytes", None)
    if not include_stats:
        payload.pop("stats", None)
    return payload


# ----------------------------------------------------------------------
# atomic_write_text
# ----------------------------------------------------------------------


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "table.json"
        atomic_write_text(target, "one\n")
        assert target.read_text() == "one\n"
        atomic_write_text(target, "two\n")
        assert target.read_text() == "two\n"
        # No tmp droppings left behind.
        assert list(tmp_path.iterdir()) == [target]


# ----------------------------------------------------------------------
# JobJournal: framing, replay, truncation, compaction
# ----------------------------------------------------------------------


class TestJobJournal:
    def wal(self, tmp_path):
        return tmp_path / WAL_FILENAME

    def test_append_replay_round_trip(self, tmp_path):
        journal = JobJournal(self.wal(tmp_path))
        assert journal.record_submit(
            "job-1", "fp-a", "discover", {"jobs": 2}, priority=3,
            idempotency_key="k1", submitted_at=12.5,
        )
        assert journal.record_start("job-1")
        assert journal.record_checkpoint("job-1", {"validation_level": 2})
        assert journal.record_finish("job-1", "done")
        assert journal.record_submit("job-2", "fp-b", "rank", {})
        journal.close(compact=False)

        reborn = JobJournal(self.wal(tmp_path))
        assert reborn.replayed_records == 5
        assert not reborn.truncated
        one = reborn.jobs["job-1"]
        assert one.dataset == "fp-a"
        assert one.config == {"jobs": 2}
        assert one.priority == 3
        assert one.idempotency_key == "k1"
        assert one.submitted_at == 12.5
        assert one.started
        assert one.checkpoint == {"validation_level": 2}
        assert one.terminal == "done"
        two = reborn.jobs["job-2"]
        assert two.kind == "rank" and not two.started and two.terminal is None
        assert reborn.find_by_key("k1") is one
        assert reborn.find_by_key("nope") is None
        reborn.close(compact=False)

    def test_torn_tail_is_truncated(self, tmp_path):
        path = self.wal(tmp_path)
        journal = JobJournal(path)
        journal.record_submit("job-1", "fp", "discover", {})
        journal.close(compact=False)
        good_size = path.stat().st_size
        # A crash mid-append leaves half a frame behind.
        with open(path, "ab") as handle:
            handle.write(struct.pack("<II", 123456, 40) + b"torn")

        reborn = JobJournal(path)
        assert reborn.truncated
        assert reborn.replayed_records == 1
        assert "job-1" in reborn.jobs
        assert path.stat().st_size == good_size
        # The journal keeps appending cleanly from the truncation point.
        assert reborn.record_start("job-1")
        reborn.close(compact=False)
        third = JobJournal(path)
        assert not third.truncated and third.jobs["job-1"].started
        third.close(compact=False)

    def test_crc_mismatch_drops_tail(self, tmp_path):
        path = self.wal(tmp_path)
        journal = JobJournal(path)
        journal.record_submit("job-1", "fp", "discover", {})
        journal.record_submit("job-2", "fp", "discover", {})
        journal.close(compact=False)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF  # corrupt the last payload byte
        path.write_bytes(bytes(raw))

        reborn = JobJournal(path)
        assert reborn.truncated
        assert list(reborn.jobs) == ["job-1"]
        reborn.close(compact=False)

    def test_garbage_file_boots_empty(self, tmp_path):
        path = self.wal(tmp_path)
        path.write_bytes(b"\x00" * 7)
        journal = JobJournal(path)
        assert journal.jobs == {}
        assert journal.truncated
        assert path.stat().st_size == 0
        journal.close(compact=False)

    def test_compaction_shrinks_and_preserves_state(self, tmp_path):
        path = self.wal(tmp_path)
        journal = JobJournal(path)
        journal.record_submit("job-1", "fp", "discover", {}, idempotency_key="k")
        journal.record_start("job-1")
        for level in range(30):
            journal.record_checkpoint("job-1", {"validation_level": level})
        journal.record_submit("job-2", "fp", "discover", {})
        journal.record_finish("job-2", "done")
        before = path.stat().st_size
        journal.close(compact=True)  # clean shutdown compacts
        assert path.stat().st_size < before

        reborn = JobJournal(path)
        assert not reborn.truncated
        one = reborn.jobs["job-1"]
        # Only the *latest* checkpoint survives compaction.
        assert one.checkpoint == {"validation_level": 29}
        assert one.checkpoints == 1
        assert one.started and one.idempotency_key == "k"
        assert reborn.jobs["job-2"].terminal == "done"
        reborn.close(compact=False)

    def test_torn_write_fault_breaks_journal_not_replay(self, tmp_path):
        path = self.wal(tmp_path)
        journal = JobJournal(path)
        assert journal.record_submit("job-1", "fp", "discover", {})
        faults.activate("journal.torn_write", times=1)
        # The injected crash drops this append and marks the journal
        # broken; serving must keep going regardless.
        assert not journal.record_start("job-1")
        assert journal.broken
        assert not journal.record_finish("job-1", "done")  # dropped
        journal.close(compact=False)

        reborn = JobJournal(path)
        assert reborn.truncated  # the half frame was on disk
        assert reborn.replayed_records == 1
        assert not reborn.jobs["job-1"].started
        reborn.close(compact=False)

    def test_counters_shape(self, tmp_path):
        journal = JobJournal(self.wal(tmp_path))
        journal.record_submit("job-1", "fp", "discover", {})
        counters = journal.counters()
        assert counters["jobs"] == 1 and counters["active"] == 1
        assert counters["broken"] == 0
        journal.close(compact=False)


# ----------------------------------------------------------------------
# Scheduler recovery
# ----------------------------------------------------------------------


class TestSchedulerRecover:
    def make_journal(self, tmp_path):
        return JobJournal(tmp_path / WAL_FILENAME)

    def test_requeued_resumed_lost_completed(self, tmp_path):
        journal = self.make_journal(tmp_path)
        # Four journaled fates: never started, checkpointed, dataset
        # gone, and already finished.
        journal.record_submit("job-1", "fp-ok", "discover", {}, submitted_at=1.0)
        journal.record_submit("job-2", "fp-ok", "discover", {}, submitted_at=2.0)
        journal.record_start("job-2")
        journal.record_checkpoint("job-2", {"validation_level": 2})
        journal.record_submit("job-3", "fp-gone", "discover", {}, submitted_at=3.0)
        journal.record_submit("job-4", "fp-ok", "discover", {}, submitted_at=4.0)
        journal.record_start("job-4")
        journal.record_finish("job-4", "done")

        ran = []

        def executor(job):
            ran.append((job.job_id, job.checkpoint))

        scheduler = JobScheduler(executor, max_workers=1, journal=journal)
        counts = scheduler.recover(dataset_ok=lambda fp: fp == "fp-ok")
        assert counts == {"completed": 1, "requeued": 1, "resumed": 1, "lost": 1}

        assert scheduler.wait("job-1", timeout=10.0).status == DONE
        assert scheduler.wait("job-2", timeout=10.0).status == DONE
        # Lost is a real terminal status, not a 404.
        lost = scheduler.get("job-3")
        assert lost.status == LOST and lost.done.is_set()
        assert scheduler.get("job-4").status == DONE
        assert scheduler.counters()["lost"] == 1
        # The resumed job carried its checkpoint into execution.
        assert dict(ran)["job-2"] == {"validation_level": 2}
        assert dict(ran)["job-1"] is None
        # Fresh ids never collide with recovered ones.
        fresh = scheduler.submit("fp-ok", "discover", JobConfig.from_dict(None))
        assert fresh.job_id == "job-5"
        scheduler.shutdown()
        journal.close(compact=False)

    def test_recover_honours_pre_crash_cancel(self, tmp_path):
        journal = self.make_journal(tmp_path)
        journal.record_submit("job-1", "fp", "discover", {})
        journal.record_start("job-1")
        journal.record_cancel("job-1")
        scheduler = JobScheduler(lambda job: None, max_workers=1, journal=journal)
        counts = scheduler.recover(dataset_ok=lambda fp: True)
        assert counts["completed"] == 1
        assert scheduler.get("job-1").status == "cancelled"
        scheduler.shutdown()
        journal.close(compact=False)

    def test_recover_reattaches_stored_result(self, tmp_path):
        journal = self.make_journal(tmp_path)
        journal.record_submit("job-1", "fp", "discover", {})
        journal.record_start("job-1")
        journal.record_finish("job-1", "done")
        sentinel = object()
        scheduler = JobScheduler(lambda job: None, max_workers=1, journal=journal)
        scheduler.recover(
            dataset_ok=lambda fp: True, result_for=lambda fp, cfg: sentinel
        )
        job = scheduler.get("job-1")
        assert job.result is sentinel and job.cached and job.recovered
        scheduler.shutdown()
        journal.close(compact=False)

    def test_idempotency_key_dedups_across_restart(self, tmp_path):
        journal = self.make_journal(tmp_path)
        journal.record_submit(
            "job-1", "fp", "discover", {}, idempotency_key="retry-key"
        )
        scheduler = JobScheduler(lambda job: None, max_workers=1, journal=journal)
        scheduler.recover(dataset_ok=lambda fp: True)
        # The client retrying its submit after the crash lands on the
        # recovered job instead of queueing a duplicate.
        again = scheduler.submit(
            "fp", "discover", JobConfig.from_dict(None), idempotency_key="retry-key"
        )
        assert again.job_id == "job-1"
        scheduler.shutdown()
        journal.close(compact=False)

    def test_recover_fault_degrades_to_empty(self, tmp_path):
        journal = self.make_journal(tmp_path)
        journal.record_submit("job-1", "fp", "discover", {})
        faults.activate("scheduler.recover", times=1)
        scheduler = JobScheduler(lambda job: None, max_workers=1, journal=journal)
        counts = scheduler.recover(dataset_ok=lambda fp: True)
        assert counts == {"completed": 0, "requeued": 0, "resumed": 0, "lost": 0}
        scheduler.shutdown()
        journal.close(compact=False)


# ----------------------------------------------------------------------
# Checkpoint/resume determinism (the tentpole soundness bar)
# ----------------------------------------------------------------------


class TestCheckpointResume:
    @pytest.mark.parametrize("semantics", [NullSemantics.EQ, NullSemantics.NEQ])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_resumed_covers_are_byte_identical(self, semantics, jobs):
        for seed in (3, 11, 27):
            relation = make_random_relation(seed, semantics=semantics)

            cold = make_algorithm("dhyfd", jobs=jobs).discover(relation)

            # Checkpointing on (every level boundary) must not change
            # the answer.
            states = []
            checkpointing = make_algorithm("dhyfd", jobs=jobs)
            checkpointing.checkpoint_interval = 0.0
            checkpointing.checkpoint_sink = states.append
            with_ckpt = checkpointing.discover(relation)
            assert payload_without_timing(with_ckpt) == payload_without_timing(cold)

            if not states:
                continue  # relation too small to cross a level boundary
            for state in states:
                assert state["format"] == CHECKPOINT_FORMAT
                assert state["version"] == CHECKPOINT_VERSION
                resumed_algo = make_algorithm("dhyfd", jobs=jobs)
                resumed_algo.resume_from = state
                resumed = resumed_algo.discover(relation)
                # The resumed run skips completed levels yet lands on
                # the exact same cover (stats legitimately differ).
                assert resumed.stats.resumed_levels == state["validation_level"]
                assert payload_without_timing(
                    resumed, include_stats=False
                ) == payload_without_timing(cold, include_stats=False)
                assert cover_to_json(resumed.fds, relation.schema) == cover_to_json(
                    cold.fds, relation.schema
                )

    def test_rejected_checkpoint_falls_back_to_cold_start(self):
        relation = make_random_relation(11)
        cold = make_algorithm("dhyfd").discover(relation)
        algo = make_algorithm("dhyfd")
        algo.resume_from = {"format": "not-a-checkpoint"}
        result = algo.discover(relation)
        assert result.stats.resumed_levels == 0
        assert payload_without_timing(result) == payload_without_timing(cold)


# ----------------------------------------------------------------------
# FDService wiring: kill switch, idempotency, end-to-end recovery
# ----------------------------------------------------------------------


class TestServiceDurability:
    def test_journal_created_under_store_dir(self, tmp_path):
        with FDService(store_dir=tmp_path, journal=True) as service:
            assert service.journal is not None
            assert (tmp_path / WAL_FILENAME).exists()

    def test_env_kill_switch_disables_journal(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FD_JOURNAL", "0")
        assert not journal_enabled_by_env()
        with FDService(store_dir=tmp_path) as service:
            assert service.journal is None
            entry = service.register_rows(
                ["a", "b"], [(1, 1), (2, 1), (3, 2)]
            )
            job = service.discover(entry.fingerprint, timeout=30.0)
            assert job.status == DONE
        assert not (tmp_path / WAL_FILENAME).exists()

    def test_no_store_dir_means_no_journal(self):
        with FDService() as service:
            assert service.journal is None

    def test_submit_is_journaled_before_return(self, tmp_path):
        with FDService(store_dir=tmp_path, journal=True) as service:
            entry = service.register_rows(["a", "b"], [(1, 1), (2, 2)])
            job = service.submit(entry.fingerprint, "discover")
            assert job.job_id in service.journal.jobs
            service.scheduler.wait(job.job_id, timeout=30.0)

    def test_recovery_end_to_end(self, tmp_path):
        store_dir = tmp_path / "store"
        dataset_dir = tmp_path / "datasets"
        relation = make_random_relation(11)
        with FDService(
            store_dir=store_dir, dataset_dir=dataset_dir, journal=True
        ) as service:
            fingerprint = service.register_relation(relation).fingerprint
        direct = cover_to_json(
            make_algorithm("dhyfd").discover(relation).fds, relation.schema
        )

        # Forge the crash aftermath: a submitted-but-never-started job
        # and one against a dataset this replica never had.
        journal = JobJournal(store_dir / WAL_FILENAME)
        journal.record_submit("job-7", fingerprint, "discover", {}, submitted_at=1.0)
        journal.record_submit("job-8", "fp-gone", "discover", {}, submitted_at=2.0)
        journal.close(compact=False)

        with FDService(
            store_dir=store_dir, dataset_dir=dataset_dir,
            journal=True, recover=True,
        ) as service:
            assert service.recovery == {
                "completed": 0, "requeued": 1, "resumed": 0, "lost": 1,
            }
            assert service.health()["recovery"]["requeued"] == 1
            job = service.scheduler.wait("job-7", timeout=60.0)
            assert job.status == DONE and job.recovered
            assert cover_to_json(job.result.fds, relation.schema) == direct
            lost = service.scheduler.get("job-8")
            assert lost.status == LOST
            payload = lost.status_payload()
            assert payload["status"] == "lost" and payload["recovered"] is True

    def test_resume_from_checkpoint_end_to_end(self, tmp_path):
        store_dir = tmp_path / "store"
        dataset_dir = tmp_path / "datasets"
        relation = make_random_relation(27)
        with FDService(
            store_dir=store_dir, dataset_dir=dataset_dir, journal=True
        ) as service:
            fingerprint = service.register_relation(relation).fingerprint
        direct = cover_to_json(
            make_algorithm("dhyfd").discover(relation).fds, relation.schema
        )

        # Capture a real mid-run snapshot to forge a crashed job with.
        states = []
        algo = make_algorithm("dhyfd")
        algo.checkpoint_interval = 0.0
        algo.checkpoint_sink = states.append
        algo.discover(relation)
        assert states, "seed 27 must be large enough to emit checkpoints"

        journal = JobJournal(store_dir / WAL_FILENAME)
        journal.record_submit("job-3", fingerprint, "discover", {}, submitted_at=1.0)
        journal.record_start("job-3")
        journal.record_checkpoint("job-3", states[0])
        journal.close(compact=False)

        with FDService(
            store_dir=store_dir, dataset_dir=dataset_dir,
            journal=True, recover=True,
        ) as service:
            assert service.recovery["resumed"] == 1
            job = service.scheduler.wait("job-3", timeout=60.0)
            assert job.status == DONE
            assert job.resumed and job.recovered
            assert job.result.stats.resumed_levels > 0
            assert cover_to_json(job.result.fds, relation.schema) == direct
            payload = job.status_payload(include_result=False)
            assert payload["resumed"] is True
            metrics = service.metrics_payload()
            assert metrics["counters"]["service.jobs.resumed"] == 1
            assert metrics["journal"]["jobs"] == 1

    def test_http_idempotency_key_dedups(self, tmp_path):
        service = FDService(store_dir=tmp_path, journal=True)
        server, _ = start_in_thread(service)
        client = ServiceClient(f"http://127.0.0.1:{server.server_port}")
        try:
            upload = client.upload_csv("a,b\n1,1\n2,2\n3,1\n", name="tiny")
            first = client.submit(upload["fingerprint"], idempotency_key="once")
            second = client.submit(upload["fingerprint"], idempotency_key="once")
            assert first == second
            third = client.submit(upload["fingerprint"], idempotency_key="twice")
            assert third != first
            assert client.metrics()["counters"]["service.jobs.deduped"] == 1
            client.wait(first, timeout=30.0)
            client.wait(third, timeout=30.0)
        finally:
            server.shutdown()
            service.close()

    def test_clean_shutdown_compacts_wal(self, tmp_path):
        service = FDService(
            store_dir=tmp_path, journal=True, checkpoint_interval=0.0
        )
        entry = service.register_relation(make_random_relation(27))
        job = service.discover(entry.fingerprint, timeout=60.0)
        assert job.status == DONE
        uncompacted = (tmp_path / WAL_FILENAME).stat().st_size
        service.close()
        compacted = (tmp_path / WAL_FILENAME).stat().st_size
        assert compacted < uncompacted
        journal = JobJournal(tmp_path / WAL_FILENAME)
        assert journal.jobs[job.job_id].terminal == DONE
        journal.close(compact=False)
