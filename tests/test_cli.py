"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.relational.io import write_csv


@pytest.fixture
def csv_path(tmp_path, city_relation):
    path = tmp_path / "city.csv"
    write_csv(city_relation, path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_discover_requires_input(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["discover"])

    def test_mutually_exclusive_inputs(self, csv_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["discover", "--csv", csv_path, "--benchmark", "iris"]
            )


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "repro-fd" in out
        assert any(ch.isdigit() for ch in out)


class TestTrace:
    def test_discover_trace_prints_tree(self, csv_path, capsys):
        assert main(["discover", "--csv", csv_path, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "discovery" in out
        assert "sampling" in out
        assert "validation" in out
        assert "induction" in out
        assert "ratio_decision" in out
        assert "ms" in out

    def test_discover_trace_out_writes_jsonl(self, csv_path, tmp_path, capsys):
        import json

        trace_path = tmp_path / "trace.jsonl"
        assert main(
            ["discover", "--csv", csv_path, "--trace-out", str(trace_path)]
        ) == 0
        records = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line.strip()
        ]
        names = {r.get("name") for r in records}
        assert "ratio_decision" in names
        cache_events = [
            r
            for r in records
            if r["type"] == "event" and r["name"] == "partition_cache"
        ]
        assert cache_events and "hits" in cache_events[0]["attrs"]

    def test_rank_trace(self, csv_path, capsys):
        assert main(["rank", "--csv", csv_path, "--trace"]) == 0
        out = capsys.readouterr().out
        assert "ranking" in out
        assert "redundancy" in out

    def test_discover_trace_memory(self, csv_path, capsys):
        assert main(["discover", "--csv", csv_path, "--trace-memory"]) == 0
        assert "KiB" in capsys.readouterr().out


class TestDiscover:
    def test_csv_input(self, csv_path, capsys):
        assert main(["discover", "--csv", csv_path]) == 0
        out = capsys.readouterr().out
        assert "dhyfd" in out
        assert "FDs" in out

    def test_show_fds(self, csv_path, capsys):
        main(["discover", "--csv", csv_path, "--show-fds"])
        out = capsys.readouterr().out
        assert "zip -> city" in out

    def test_benchmark_input(self, capsys):
        assert main(["discover", "--benchmark", "iris", "--rows", "60"]) == 0
        assert "dhyfd" in capsys.readouterr().out

    def test_algorithm_option(self, csv_path, capsys):
        main(["discover", "--csv", csv_path, "--algorithm", "tane"])
        assert "tane" in capsys.readouterr().out

    def test_null_semantics_option(self, csv_path):
        assert main(
            ["discover", "--csv", csv_path, "--null-semantics", "neq"]
        ) == 0


class TestRank:
    def test_rank_output(self, csv_path, capsys):
        assert main(["rank", "--csv", csv_path, "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "Top-ranked FDs" in out
        assert "#red+0" in out


class TestCovers:
    def test_covers_output(self, csv_path, capsys):
        assert main(["covers", "--csv", csv_path]) == 0
        out = capsys.readouterr().out
        assert "canonical" in out
        assert "%Size" in out


class TestReport:
    def test_report_to_stdout(self, csv_path, capsys):
        assert main(["report", "--csv", csv_path, "--title", "My data"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# My data")
        assert "## Columns" in out

    def test_report_to_file(self, csv_path, tmp_path, capsys):
        out_path = tmp_path / "report.md"
        assert main(
            ["report", "--csv", csv_path, "--output", str(out_path)]
        ) == 0
        assert out_path.exists()
        assert "## Functional dependencies" in out_path.read_text()


class TestKeys:
    def test_keys_output(self, csv_path, capsys):
        assert main(["keys", "--csv", csv_path]) == 0
        out = capsys.readouterr().out
        assert "unique column combination" in out
        assert "name" in out

    def test_keys_duplicate_rows(self, tmp_path, capsys):
        path = tmp_path / "dup.csv"
        path.write_text("a,b\n1,2\n1,2\n")
        assert main(["keys", "--csv", str(path)]) == 0
        assert "duplicate rows" in capsys.readouterr().out


class TestNormalize:
    def test_normalize_output(self, csv_path, capsys):
        assert main(["normalize", "--csv", csv_path]) == 0
        out = capsys.readouterr().out
        assert "candidate keys:" in out
        assert "3NF synthesis:" in out
        assert "lossless join: True" in out


class TestDatasets:
    def test_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "ncvoter" in out
        assert "paper shape" in out


class TestGenerate:
    def test_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "gen.csv"
        assert main(
            [
                "generate",
                "--benchmark",
                "iris",
                "--rows",
                "25",
                "--output",
                str(out_path),
            ]
        ) == 0
        assert out_path.exists()
        text = out_path.read_text()
        assert len(text.splitlines()) == 26  # header + 25 rows


class TestLimitFlags:
    @pytest.mark.parametrize(
        "command", ["discover", "rank", "covers", "report", "normalize"]
    )
    def test_limit_flags_accepted_everywhere(self, command, csv_path):
        args = build_parser().parse_args(
            [
                command,
                "--csv",
                csv_path,
                "--time-limit",
                "5",
                "--memory-budget",
                "64m",
                "--on-limit",
                "partial",
            ]
        )
        assert args.time_limit == 5.0
        assert args.memory_budget == 64 * 1024 ** 2
        assert args.on_limit == "partial"

    def test_memory_budget_suffix_parsing(self, csv_path):
        args = build_parser().parse_args(
            ["discover", "--csv", csv_path, "--memory-budget", "1g"]
        )
        assert args.memory_budget == 1024 ** 3

    def test_memory_budget_invalid_value(self, csv_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["discover", "--csv", csv_path, "--memory-budget", "lots"]
            )

    def test_on_limit_invalid_value(self, csv_path):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["discover", "--csv", csv_path, "--on-limit", "maybe"]
            )

    def test_discover_partial_prints_notice(self, csv_path, capsys):
        assert (
            main(
                [
                    "discover",
                    "--csv",
                    csv_path,
                    "--time-limit",
                    "0",
                    "--on-limit",
                    "partial",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "PARTIAL RESULT (time limit)" in out

    def test_discover_raise_policy_propagates(self, csv_path):
        from repro.core.base import TimeLimitExceeded

        with pytest.raises(TimeLimitExceeded):
            main(["discover", "--csv", csv_path, "--time-limit", "0"])

    def test_discover_memory_budget_still_exact(self, csv_path, capsys):
        import re

        def normalized(out):
            return re.sub(r"in \d+\.\d+s", "in Xs", out)

        assert main(["discover", "--csv", csv_path, "--show-fds"]) == 0
        unconstrained = normalized(capsys.readouterr().out)
        assert (
            main(
                [
                    "discover",
                    "--csv",
                    csv_path,
                    "--show-fds",
                    "--memory-budget",
                    "1",
                ]
            )
            == 0
        )
        constrained = normalized(capsys.readouterr().out)
        assert constrained == unconstrained

    def test_rank_partial_skips_ranking(self, csv_path, capsys):
        assert (
            main(
                [
                    "rank",
                    "--csv",
                    csv_path,
                    "--time-limit",
                    "0",
                    "--on-limit",
                    "partial",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # The partial notice always shows; whether ranking is skipped
        # depends on how much cover survived the limit (an empty cover
        # ranks instantly, so both outcomes are legal here).
        assert "PARTIAL RESULT" in out


class TestBadRowFlag:
    @pytest.fixture
    def ragged_path(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b,c\n1,2,3\n4,5\n6,7,8\n")
        return str(path)

    def test_default_raises_with_line_number(self, ragged_path):
        from repro.relational.schema import SchemaError

        with pytest.raises(SchemaError) as excinfo:
            main(["discover", "--csv", ragged_path])
        assert "CSV line 3" in str(excinfo.value)

    def test_skip_policy_loads(self, ragged_path, capsys):
        assert (
            main(["discover", "--csv", ragged_path, "--on-bad-row", "skip"])
            == 0
        )
        assert "2 rows" in capsys.readouterr().out

    def test_pad_policy_loads(self, ragged_path, capsys):
        assert (
            main(["discover", "--csv", ragged_path, "--on-bad-row", "pad"])
            == 0
        )
        assert "3 rows" in capsys.readouterr().out
