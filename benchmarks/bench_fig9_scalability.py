"""Figure 9 — row scalability (weather) and column scalability (diabetic).

The paper's qualitative experiment: TANE and FDEP blow up as rows grow;
TANE also dies with columns; HyFD degrades when the number of valid FDs
doubles; DHyFD scales smoothly on both axes.  Each series is printed
with the FD count (the second y-axis of the right-hand chart).
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_discovery
from repro.bench.tables import format_table
from repro.datasets.benchmarks import load_benchmark

from _utils import TIME_LIMIT, pick, write_artifact

ALGORITHMS = ["tane", "fdep2", "hyfd", "dhyfd"]

ROW_AXIS = pick(
    smoke=[150, 300],
    quick=[250, 500, 1000, 2000, 4000],
    full=[500, 1000, 2000, 4000, 8000, 16000],
)
COL_AXIS = pick(
    smoke=[6, 10],
    quick=[8, 12, 16, 20, 25, 30],
    full=[8, 12, 16, 20, 24, 30],
)
DIABETIC_ROWS = pick(smoke=80, quick=150, full=600)

_row_series = []
_col_series = []


@pytest.mark.parametrize("n_rows", ROW_AXIS)
def test_fig9_weather_rows(n_rows, benchmark):
    relation = load_benchmark("weather", n_rows=n_rows)
    cells = [n_rows]
    fd_count = "-"
    for algorithm in ALGORITHMS:
        record, result = run_discovery(
            relation, algorithm, dataset="weather",
            time_limit=TIME_LIMIT, track_memory=False,
        )
        cells.append(record.seconds_text)
        if result is not None:
            fd_count = result.fd_count
    cells.append(fd_count)
    _row_series.append(cells)

    benchmark.pedantic(
        lambda: run_discovery(
            relation, "dhyfd", dataset="weather",
            time_limit=TIME_LIMIT, track_memory=False,
        ),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("n_cols", COL_AXIS)
def test_fig9_diabetic_cols(n_cols, benchmark):
    base = load_benchmark("diabetic", n_rows=DIABETIC_ROWS)
    relation = base.project_columns(list(range(n_cols)))
    cells = [n_cols]
    fd_count = "-"
    for algorithm in ALGORITHMS:
        record, result = run_discovery(
            relation, algorithm, dataset="diabetic",
            time_limit=TIME_LIMIT, track_memory=False,
        )
        cells.append(record.seconds_text)
        if result is not None:
            fd_count = result.fd_count
    cells.append(fd_count)
    _col_series.append(cells)

    benchmark.pedantic(
        lambda: run_discovery(
            relation, "dhyfd", dataset="diabetic",
            time_limit=TIME_LIMIT, track_memory=False,
        ),
        rounds=1,
        iterations=1,
    )


def teardown_module(module):
    headers_rows = ["rows"] + ALGORITHMS + ["#FD"]
    headers_cols = ["cols"] + ALGORITHMS + ["#FD"]
    text = format_table(
        headers_rows, _row_series,
        title="Fig. 9 (left) — row scalability on weather",
    )
    text += "\n\n" + format_table(
        headers_cols, _col_series,
        title=f"Fig. 9 (right) — column scalability on diabetic "
        f"({DIABETIC_ROWS} rows)",
    )
    write_artifact("fig9_scalability", text)
