"""Figure 11 — redundancy buckets with vs without nulls over ncvoter
fragments.

The paper compares, across growing ncvoter fragments, how many FDs
cause up to a given number of redundancies when null occurrences are
counted (blue) vs when LHS/RHS nulls are excluded (orange), plus the
time to determine them.
"""

from __future__ import annotations

import time

import pytest

from repro.algorithms import make_algorithm
from repro.bench.tables import format_table
from repro.covers.canonical import canonical_cover
from repro.datasets.benchmarks import load_benchmark
from repro.partitions.cache import PartitionCache
from repro.ranking.ranker import redundancy_histogram
from repro.ranking.redundancy import NullPolicy, count_redundant

from _utils import TIME_LIMIT, pick, write_artifact

FRAGMENTS = pick(
    smoke=[120],
    quick=[250, 500, 1000],
    full=[500, 1000, 2000, 4000],
)

_blocks = []


@pytest.mark.parametrize("n_rows", FRAGMENTS)
def test_fig11_fragment(n_rows, benchmark):
    relation = load_benchmark("ncvoter", n_rows=n_rows)
    discovered = make_algorithm("dhyfd", time_limit=TIME_LIMIT).discover(relation)
    cover = canonical_cover(discovered.fds)

    def measure():
        cache = PartitionCache(relation)
        with_nulls = [
            count_redundant(relation, fd, NullPolicy.INCLUDE, cache)
            for fd in cover
        ]
        without_nulls = [
            count_redundant(relation, fd, NullPolicy.EXCLUDE_LHS_RHS, cache)
            for fd in cover
        ]
        return with_nulls, without_nulls

    start = time.perf_counter()
    with_nulls, without_nulls = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    elapsed = time.perf_counter() - start

    # excluding nulls can only reduce an FD's redundancy
    for including, excluding in zip(with_nulls, without_nulls):
        assert excluding <= including

    blue = redundancy_histogram(with_nulls)
    orange = redundancy_histogram(without_nulls)
    rows = [
        (threshold_b, count_b, threshold_o, count_o)
        for (threshold_b, count_b), (threshold_o, count_o) in zip(blue, orange)
    ]
    _blocks.append(
        format_table(
            ["<=red (with nulls)", "#FDs", "<=red (no nulls)", "#FDs"],
            rows,
            title=(
                f"Fig. 11 — ncvoter fragment {n_rows} rows: "
                f"{len(cover)} FDs, time {elapsed:.3f}s"
            ),
        )
    )


def teardown_module(module):
    write_artifact("fig11_null_comparison", "\n\n".join(_blocks))
