"""Table III — left-reduced vs canonical covers.

For each replica: discover the left-reduced cover with DHyFD, compute
the canonical cover, and report |L-r|, ||L-r||, |Can|, ||Can||, %Size,
%Card and the cover-computation time — the paper's Table III columns.
"""

from __future__ import annotations

import pytest

from repro.algorithms import make_algorithm
from repro.bench.tables import format_table
from repro.covers.canonical import compare_covers
from repro.datasets.benchmarks import load_benchmark

from _utils import TIME_LIMIT, pick, write_artifact

DATASETS = pick(
    smoke=[("iris", 60), ("bridges", 50)],
    quick=[
        ("iris", None), ("balance", None), ("chess", 800),
        ("abalone", 800), ("nursery", 800), ("breast", None),
        ("bridges", None), ("echo", None), ("adult", 1000),
        ("letter", 1000), ("ncvoter", 400), ("hepatitis", 30),
        ("horse", 14), ("fd_reduced", 800), ("weather", 1000),
        ("pdbx", 1500), ("lineitem", 1000), ("uniprot", 400),
    ],
    full=[
        (name, None)
        for name in [
            "iris", "balance", "chess", "abalone", "nursery", "breast",
            "bridges", "echo", "adult", "letter", "ncvoter", "hepatitis",
            "horse", "fd_reduced", "weather", "diabetic", "pdbx",
            "lineitem", "uniprot",
        ]
    ],
)

_rows = []


@pytest.mark.parametrize("dataset,row_override", DATASETS)
def test_table3_dataset(dataset, row_override, benchmark):
    relation = load_benchmark(dataset, n_rows=row_override)
    discovered = make_algorithm("dhyfd", time_limit=TIME_LIMIT).discover(relation)

    canonical, comparison = benchmark.pedantic(
        lambda: compare_covers(discovered.fds), rounds=1, iterations=1
    )

    # cover-theory invariants the paper relies on
    assert comparison.canonical_count <= max(1, comparison.left_reduced_count)
    assert comparison.canonical_occurrences <= max(
        1, comparison.left_reduced_occurrences
    )

    _rows.append(
        [
            dataset,
            comparison.left_reduced_count,
            comparison.left_reduced_occurrences,
            comparison.canonical_count,
            comparison.canonical_occurrences,
            f"{comparison.size_percent:.0f}",
            f"{comparison.occurrence_percent:.0f}",
            f"{comparison.seconds:.4f}",
        ]
    )


def teardown_module(module):
    headers = ["dataset", "|L-r|", "||L-r||", "|Can|", "||Can||", "%S", "%C", "time"]
    table = format_table(headers, _rows, title="Table III: covers")
    if _rows:
        avg_size = sum(float(r[5]) for r in _rows) / len(_rows)
        avg_card = sum(float(r[6]) for r in _rows) / len(_rows)
        table += (
            f"\naverage %Size = {avg_size:.0f}%  average %Card = {avg_card:.0f}%"
            "  (paper: ~50% average savings)"
        )
    write_artifact("table3_covers", table)
