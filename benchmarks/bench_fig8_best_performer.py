"""Figure 8 — best-performing algorithm per (rows × cols) fragment.

The paper's quantitative experiment colours each fragment of weather
and diabetic by the fastest algorithm: FDEP wins with few rows, TANE
only with few columns, the hybrids (and increasingly DHyFD) win as both
grow.  This bench prints the winner grid.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_discovery
from repro.bench.tables import format_table
from repro.datasets.benchmarks import load_benchmark

from _utils import TIME_LIMIT, pick, write_artifact

ALGORITHMS = ["tane", "fdep2", "hyfd", "dhyfd"]

GRIDS = {
    "weather": {
        "rows": pick([150, 400], [200, 600, 1500], [500, 2000, 4000]),
        "cols": pick([6, 12], [6, 12, 18], [6, 12, 18]),
    },
    "diabetic": {
        "rows": pick([60, 120], [80, 160, 320], [200, 800, 2000]),
        "cols": pick([8, 14], [8, 14, 20], [10, 20, 30]),
    },
}

_grids = {}


@pytest.mark.parametrize("dataset", list(GRIDS))
def test_fig8_grid(dataset, benchmark):
    axes = GRIDS[dataset]
    cells = []
    for n_rows in axes["rows"]:
        base = load_benchmark(dataset, n_rows=n_rows)
        row_cells = [n_rows]
        for n_cols in axes["cols"]:
            fragment = base.project_columns(list(range(n_cols)))
            best_algorithm, best_seconds = "TL", None
            for algorithm in ALGORITHMS:
                record, _ = run_discovery(
                    fragment, algorithm, dataset=dataset,
                    time_limit=TIME_LIMIT, track_memory=False,
                )
                if record.timed_out or record.seconds is None:
                    continue
                if best_seconds is None or record.seconds < best_seconds:
                    best_algorithm, best_seconds = algorithm, record.seconds
            row_cells.append(best_algorithm)
        cells.append(row_cells)
    _grids[dataset] = (axes["cols"], cells)

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def teardown_module(module):
    blocks = []
    for dataset, (cols, cells) in _grids.items():
        headers = ["rows\\cols"] + [str(c) for c in cols]
        blocks.append(
            format_table(
                headers, cells, title=f"Fig. 8 — fastest algorithm on {dataset}"
            )
        )
    write_artifact("fig8_best_performer", "\n\n".join(blocks))
