"""Ablations for the design choices DESIGN.md calls out.

1. DDM on/off — DHyFD with dynamic partition refreshes disabled falls
   back to validating from singleton partitions (HyFD-style), isolating
   the contribution of Algorithm 3.
2. Extended tree + synergized induction vs the classical FDEP pipeline
   (FDEP2 vs FDEP) — the paper's §IV-C/§IV-D improvements.
3. Sorted full non-FD list vs non-redundant non-FD cover (FDEP2 vs
   FDEP1) — the paper's finding that FDEP1's preprocessing never pays.
4. Initial sampling on/off — DHyFD without the one-shot sorted
   neighborhood sample must grow the tree from validation violations
   alone (§IV-H argues one wide sample is the right amount).
"""

from __future__ import annotations

import time

import pytest

from repro.algorithms import DHyFD, FDEP, FDEP1, FDEP2
from repro.bench.tables import format_table
from repro.datasets.benchmarks import load_benchmark

from _utils import TIME_LIMIT, pick, write_artifact

_ddm_rows = []
_fdep_rows = []

DDM_DATASETS = pick(
    smoke=[("weather", 300)],
    quick=[("weather", 1500), ("diabetic", 150), ("lineitem", 800)],
    full=[("weather", None), ("diabetic", 300), ("lineitem", None)],
)

FDEP_DATASETS = pick(
    smoke=[("bridges", 50)],
    quick=[("bridges", None), ("echo", None), ("hepatitis", 40), ("ncvoter", 300)],
    full=[("bridges", None), ("echo", None), ("hepatitis", 80), ("ncvoter", 600)],
)


@pytest.mark.parametrize("dataset,row_override", DDM_DATASETS)
def test_ablation_ddm(dataset, row_override, benchmark):
    relation = load_benchmark(dataset, n_rows=row_override)

    start = time.perf_counter()
    with_ddm = DHyFD(time_limit=TIME_LIMIT).discover(relation)
    with_seconds = time.perf_counter() - start

    start = time.perf_counter()
    without_ddm = DHyFD(
        time_limit=TIME_LIMIT, enable_ddm_updates=False
    ).discover(relation)
    without_seconds = time.perf_counter() - start

    assert with_ddm.fds == without_ddm.fds  # ablation never changes output
    _ddm_rows.append(
        [
            dataset,
            relation.n_rows,
            with_ddm.fd_count,
            f"{with_seconds:.3f}",
            f"{without_seconds:.3f}",
            with_ddm.stats.partition_refreshes,
        ]
    )
    benchmark.pedantic(
        lambda: DHyFD(time_limit=TIME_LIMIT).discover(relation),
        rounds=1,
        iterations=1,
    )


_sampling_rows = []


@pytest.mark.parametrize("dataset,row_override", DDM_DATASETS)
def test_ablation_initial_sampling(dataset, row_override, benchmark):
    relation = load_benchmark(dataset, n_rows=row_override)

    start = time.perf_counter()
    with_sampling = DHyFD(time_limit=TIME_LIMIT).discover(relation)
    with_seconds = time.perf_counter() - start

    start = time.perf_counter()
    without_sampling = DHyFD(
        time_limit=TIME_LIMIT, enable_initial_sampling=False
    ).discover(relation)
    without_seconds = time.perf_counter() - start

    assert with_sampling.fds == without_sampling.fds
    assert without_sampling.stats.sampled_non_fds == 0
    _sampling_rows.append(
        [
            dataset,
            relation.n_rows,
            with_sampling.fd_count,
            f"{with_seconds:.3f}",
            f"{without_seconds:.3f}",
            with_sampling.stats.sampled_non_fds,
        ]
    )
    benchmark.pedantic(
        lambda: DHyFD(
            time_limit=TIME_LIMIT, enable_initial_sampling=False
        ).discover(relation),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("dataset,row_override", FDEP_DATASETS)
def test_ablation_fdep_family(dataset, row_override, benchmark):
    relation = load_benchmark(dataset, n_rows=row_override)
    timings = {}
    covers = {}
    for cls in (FDEP, FDEP1, FDEP2):
        start = time.perf_counter()
        result = cls(time_limit=TIME_LIMIT).discover(relation)
        timings[cls.name] = time.perf_counter() - start
        covers[cls.name] = result.fds
    assert covers["fdep"] == covers["fdep1"] == covers["fdep2"]
    _fdep_rows.append(
        [
            dataset,
            relation.n_rows,
            len(covers["fdep2"]),
            f"{timings['fdep']:.3f}",
            f"{timings['fdep1']:.3f}",
            f"{timings['fdep2']:.3f}",
        ]
    )
    benchmark.pedantic(
        lambda: FDEP2(time_limit=TIME_LIMIT).discover(relation),
        rounds=1,
        iterations=1,
    )


def teardown_module(module):
    text = format_table(
        ["dataset", "rows", "#FD", "s with DDM", "s without", "refreshes"],
        _ddm_rows,
        title="Ablation 1 — DHyFD dynamic data manager on/off",
    )
    text += "\n\n" + format_table(
        ["dataset", "rows", "#FD", "s FDEP", "s FDEP1", "s FDEP2"],
        _fdep_rows,
        title="Ablation 2/3 — classic vs synergized induction; non-FD covers",
    )
    text += "\n\n" + format_table(
        ["dataset", "rows", "#FD", "s sampled", "s unsampled", "#non-FDs sampled"],
        _sampling_rows,
        title="Ablation 4 — DHyFD initial sampling on/off",
    )
    write_artifact("ablations", text)
