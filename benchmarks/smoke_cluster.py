#!/usr/bin/env python
"""End-to-end smoke test for the sharded cluster (docs/cluster.md).

Boots ``python -m repro cluster`` (2 replicas + router) as a real
subprocess, then checks the full acceptance story over plain HTTP:

* uploads land on the shard their content fingerprint hashes to;
* covers served *through the router* are byte-identical to a direct
  in-process ``discover()``;
* ``/health`` and ``/metrics`` fan out and merge across replicas;
* killing one replica degrades only that shard — the surviving shard
  keeps serving, the dead shard answers 503 + Retry-After (no hangs) —
  and the manager restarts the replica, which reloads its persisted
  datasets and covers and serves the cached result;
* SIGKILLing a replica *mid-discovery* loses nothing: the respawned
  replica replays its job journal (``--recover``), resumes the job
  from its last checkpoint, and the client's poll loop — which never
  sees a 404 — lands on a cover byte-identical to a direct run
  (docs/durability.md).

Run directly (CI runs this as a dedicated leg)::

    PYTHONPATH=src python benchmarks/smoke_cluster.py
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import struct
import subprocess
import sys
import tempfile
import time
import urllib.request
import zlib

from repro.algorithms.registry import make_algorithm
from repro.cluster import shard_for
from repro.datasets import load_benchmark
from repro.datasets.synthetic import random_relation
from repro.relational.fd_io import cover_to_json
from repro.service import ServiceClient, ServiceError

BENCHMARK = "iris"
CONFIG = {"algorithm": "dhyfd"}
#: Deliberately slow configuration for the kill-mid-job scenario: the
#: serial python kernels give the run a multi-second lattice walk, so
#: there is a wide window to SIGKILL the replica between checkpoints.
SLOW_CONFIG = {"algorithm": "dhyfd", "backend": "python", "jobs": 1}
REPLICAS = 2


def boot_cluster(data_dir: str):
    """Start ``repro cluster --router-port 0`` and parse the bound URL."""
    env = dict(os.environ)
    # Checkpoint at every level boundary so a mid-job SIGKILL always
    # has a recent snapshot to resume from.
    env["REPRO_FD_CHECKPOINT_INTERVAL"] = "0"
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "cluster",
            "--replicas",
            str(REPLICAS),
            "--router-port",
            "0",
            "--max-workers",
            "2",
            "--data-dir",
            data_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 90.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise SystemExit(f"cluster died on startup (rc={proc.returncode})")
        if "listening on " in line:
            url = line.split("listening on ", 1)[1].split()[0]
            return proc, url
    proc.kill()
    raise SystemExit("cluster did not announce its URL within 90s")


def datasets_per_shard():
    """Benchmark variants until every shard owns at least one dataset."""
    chosen = {}
    rows = 40
    while len(chosen) < REPLICAS and rows < 400:
        relation = load_benchmark(BENCHMARK, n_rows=rows)
        shard = shard_for(relation.fingerprint(), REPLICAS)
        chosen.setdefault(shard, relation)
        rows += 1
    assert len(chosen) == REPLICAS, "could not cover every shard"
    return chosen


def cluster_info(url: str) -> dict:
    with urllib.request.urlopen(url + "/cluster", timeout=10.0) as response:
        return json.loads(response.read().decode("utf-8"))


def wal_checkpointed_jobs(path: pathlib.Path) -> set:
    """Job ids with a checkpoint frame in a replica's ``jobs.wal``.

    Read-only frame walk (crc32 + length header, see
    repro/service/journal.py) that simply stops at any torn tail — the
    replica is appending to this file while we poll it.
    """
    try:
        raw = path.read_bytes()
    except OSError:
        return set()
    jobs = set()
    offset = 0
    while offset + 8 <= len(raw):
        crc, length = struct.unpack_from("<II", raw, offset)
        start = offset + 8
        end = start + length
        if end > len(raw):
            break
        payload = raw[start:end]
        if zlib.crc32(payload) != crc:
            break
        record = json.loads(payload.decode("utf-8"))
        if record.get("type") == "checkpoint":
            jobs.add(record.get("job_id"))
        offset = end
    return jobs


def kill_mid_job_scenario(url: str, data_dir: str, client: ServiceClient) -> None:
    """SIGKILL a replica mid-discovery; the job must still finish.

    The acceptance bar of the durable job plane: after the crash the
    same job id keeps resolving (never a 404), the respawned replica
    resumes from the journaled checkpoint (skipping completed levels),
    and the final cover is byte-identical to a direct run.
    """
    relation = random_relation(
        2000, 14, domain_sizes=[3] * 14, null_rate=0.0, seed=5
    )
    expected = cover_to_json(
        make_algorithm("dhyfd").discover(relation).fds, relation.schema
    )
    info = client.upload_rows(
        relation.schema.names, list(relation.iter_rows()), name="slow-kill"
    )
    fingerprint = info["fingerprint"]
    shard = shard_for(fingerprint, REPLICAS)
    wal = pathlib.Path(data_dir) / f"replica-{shard}" / "store" / "jobs.wal"

    job_id = client.submit(fingerprint, config=dict(SLOW_CONFIG))
    local_id = job_id.split(":", 1)[1]

    # Wait until the running job has journaled at least one checkpoint,
    # then pull the plug on its replica.
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if local_id in wal_checkpointed_jobs(wal):
            break
        time.sleep(0.05)
    else:
        raise SystemExit(f"no checkpoint for {local_id} appeared in {wal}")
    status = client.status(job_id)
    assert status["status"] in ("queued", "running"), (
        f"job finished before the kill ({status['status']}) — "
        "SLOW_CONFIG is not slow enough for this host"
    )
    victim = next(r for r in cluster_info(url)["replicas"] if r["shard"] == shard)
    os.kill(victim["pid"], signal.SIGKILL)
    print(f"killed shard {shard} replica (pid {victim['pid']}) mid-job {job_id}")

    # Poll the job id through the router.  503s while the shard is
    # down are expected; a 404 means the job plane lost the job.
    poller = ServiceClient(url, timeout=30.0, retries=0)
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        try:
            status = poller.status(job_id)
        except ServiceError as exc:
            assert exc.status != 404, (
                f"{job_id} 404ed after the crash — recovery lost the job"
            )
            time.sleep(0.3)
            continue
        if status["status"] in ("done", "failed", "cancelled", "lost"):
            break
        time.sleep(0.2)
    else:
        raise SystemExit(f"{job_id} did not finish within 120s of the kill")

    assert status["status"] == "done", status
    assert status.get("recovered") is True, "job not rebuilt from the journal"
    assert status.get("resumed") is True, "job restarted cold, not resumed"
    result = ServiceClient.result_from_status(status)
    resumed_levels = status["result"]["stats"]["resumed_levels"]
    assert resumed_levels > 0, "resume did not skip any completed levels"
    assert cover_to_json(result.fds, result.schema) == expected, (
        "resumed cover differs from direct discover()"
    )
    metrics = client.metrics()
    assert metrics["counters"]["cluster.service.jobs.resumed"] >= 1
    print(
        f"durability: {job_id} survived SIGKILL, resumed past "
        f"{resumed_levels} completed levels, cover byte-identical"
    )


def main() -> int:
    by_shard = datasets_per_shard()
    expected = {
        shard: cover_to_json(
            make_algorithm("dhyfd").discover(relation).fds, relation.schema
        )
        for shard, relation in by_shard.items()
    }

    data_dir = tempfile.mkdtemp(prefix="repro-cluster-smoke-")
    proc, url = boot_cluster(data_dir)
    try:
        client = ServiceClient(url, timeout=120.0)
        fingerprints = {}
        for shard, relation in sorted(by_shard.items()):
            info = client.upload_rows(
                relation.schema.names,
                list(relation.iter_rows()),
                name=f"{BENCHMARK}-s{shard}",
            )
            fingerprints[shard] = info["fingerprint"]
            assert shard_for(info["fingerprint"], REPLICAS) == shard
            print(f"uploaded shard {shard}: {info['fingerprint'][:12]}... "
                  f"({relation.n_rows} rows)")

        for shard, fingerprint in sorted(fingerprints.items()):
            status = client.discover(fingerprint, config=dict(CONFIG))
            assert status["status"] == "done", status
            result = ServiceClient.result_from_status(status)
            served = cover_to_json(result.fds, result.schema)
            assert served == expected[shard], (
                f"shard {shard}: routed cover differs from direct discover()"
            )
            assert status["job_id"].startswith(f"s{shard}:"), status["job_id"]
            print(f"discover via router, shard {shard}: {len(result.fds)} FDs, "
                  "byte-identical to direct run")

        health = client.health()
        assert health["status"] == "ok" and health["healthy"] == REPLICAS, health
        metrics = client.metrics()
        assert metrics["counters"]["cluster.service.discovery.runs"] == REPLICAS
        assert "cluster.queue_depth" in metrics["gauges"], metrics["gauges"]
        print(f"fanout: /health sees {REPLICAS} healthy replicas, "
              "/metrics merges cluster totals")

        # --- failover: kill shard 0's replica process outright ---------
        replicas = cluster_info(url)["replicas"]
        victim = next(r for r in replicas if r["shard"] == 0)
        os.kill(victim["pid"], signal.SIGKILL)
        time.sleep(0.3)

        impatient = ServiceClient(url, timeout=30.0, retries=0)
        start = time.monotonic()
        try:
            impatient.discover(fingerprints[0], config=dict(CONFIG))
            raise SystemExit("dead shard unexpectedly served a request")
        except ServiceError as exc:
            elapsed = time.monotonic() - start
            assert exc.status == 503, exc
            assert exc.retry_after is not None, "503 without Retry-After"
            assert elapsed < 5.0, f"503 took {elapsed:.1f}s — should be immediate"
        status = impatient.discover(fingerprints[1], config=dict(CONFIG))
        assert status["status"] == "done", status
        print("failover: dead shard 503s immediately, surviving shard serves")

        # --- recovery: the manager restarts it; state is reloaded ------
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if cluster_info(url)["healthy"] == REPLICAS:
                break
            time.sleep(0.5)
        else:
            raise SystemExit("replica was not restarted within 60s")
        status = client.discover(fingerprints[0], config=dict(CONFIG))
        assert status["status"] == "done", status
        assert status["cached"] is True, "restarted replica lost its store"
        print("recovery: replica restarted, served the persisted cover")

        # --- durability: SIGKILL mid-discovery, job resumes -------------
        kill_mid_job_scenario(url, data_dir, client)
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            proc.kill()
    print("cluster smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
