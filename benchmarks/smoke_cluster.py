#!/usr/bin/env python
"""End-to-end smoke test for the sharded cluster (docs/cluster.md).

Boots ``python -m repro cluster`` (2 replicas + router) as a real
subprocess, then checks the full acceptance story over plain HTTP:

* uploads land on the shard their content fingerprint hashes to;
* covers served *through the router* are byte-identical to a direct
  in-process ``discover()``;
* ``/health`` and ``/metrics`` fan out and merge across replicas;
* killing one replica degrades only that shard — the surviving shard
  keeps serving, the dead shard answers 503 + Retry-After (no hangs) —
  and the manager restarts the replica, which reloads its persisted
  datasets and covers and serves the cached result.

Run directly (CI runs this as a dedicated leg)::

    PYTHONPATH=src python benchmarks/smoke_cluster.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

from repro.algorithms.registry import make_algorithm
from repro.cluster import shard_for
from repro.datasets import load_benchmark
from repro.relational.fd_io import cover_to_json
from repro.service import ServiceClient, ServiceError

BENCHMARK = "iris"
CONFIG = {"algorithm": "dhyfd"}
REPLICAS = 2


def boot_cluster(data_dir: str):
    """Start ``repro cluster --router-port 0`` and parse the bound URL."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "cluster",
            "--replicas",
            str(REPLICAS),
            "--router-port",
            "0",
            "--max-workers",
            "2",
            "--data-dir",
            data_dir,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 90.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise SystemExit(f"cluster died on startup (rc={proc.returncode})")
        if "listening on " in line:
            url = line.split("listening on ", 1)[1].split()[0]
            return proc, url
    proc.kill()
    raise SystemExit("cluster did not announce its URL within 90s")


def datasets_per_shard():
    """Benchmark variants until every shard owns at least one dataset."""
    chosen = {}
    rows = 40
    while len(chosen) < REPLICAS and rows < 400:
        relation = load_benchmark(BENCHMARK, n_rows=rows)
        shard = shard_for(relation.fingerprint(), REPLICAS)
        chosen.setdefault(shard, relation)
        rows += 1
    assert len(chosen) == REPLICAS, "could not cover every shard"
    return chosen


def cluster_info(url: str) -> dict:
    with urllib.request.urlopen(url + "/cluster", timeout=10.0) as response:
        return json.loads(response.read().decode("utf-8"))


def main() -> int:
    by_shard = datasets_per_shard()
    expected = {
        shard: cover_to_json(
            make_algorithm("dhyfd").discover(relation).fds, relation.schema
        )
        for shard, relation in by_shard.items()
    }

    data_dir = tempfile.mkdtemp(prefix="repro-cluster-smoke-")
    proc, url = boot_cluster(data_dir)
    try:
        client = ServiceClient(url, timeout=120.0)
        fingerprints = {}
        for shard, relation in sorted(by_shard.items()):
            info = client.upload_rows(
                relation.schema.names,
                list(relation.iter_rows()),
                name=f"{BENCHMARK}-s{shard}",
            )
            fingerprints[shard] = info["fingerprint"]
            assert shard_for(info["fingerprint"], REPLICAS) == shard
            print(f"uploaded shard {shard}: {info['fingerprint'][:12]}... "
                  f"({relation.n_rows} rows)")

        for shard, fingerprint in sorted(fingerprints.items()):
            status = client.discover(fingerprint, config=dict(CONFIG))
            assert status["status"] == "done", status
            result = ServiceClient.result_from_status(status)
            served = cover_to_json(result.fds, result.schema)
            assert served == expected[shard], (
                f"shard {shard}: routed cover differs from direct discover()"
            )
            assert status["job_id"].startswith(f"s{shard}:"), status["job_id"]
            print(f"discover via router, shard {shard}: {len(result.fds)} FDs, "
                  "byte-identical to direct run")

        health = client.health()
        assert health["status"] == "ok" and health["healthy"] == REPLICAS, health
        metrics = client.metrics()
        assert metrics["counters"]["cluster.service.discovery.runs"] == REPLICAS
        assert "cluster.queue_depth" in metrics["gauges"], metrics["gauges"]
        print(f"fanout: /health sees {REPLICAS} healthy replicas, "
              "/metrics merges cluster totals")

        # --- failover: kill shard 0's replica process outright ---------
        replicas = cluster_info(url)["replicas"]
        victim = next(r for r in replicas if r["shard"] == 0)
        os.kill(victim["pid"], signal.SIGKILL)
        time.sleep(0.3)

        impatient = ServiceClient(url, timeout=30.0, retries=0)
        start = time.monotonic()
        try:
            impatient.discover(fingerprints[0], config=dict(CONFIG))
            raise SystemExit("dead shard unexpectedly served a request")
        except ServiceError as exc:
            elapsed = time.monotonic() - start
            assert exc.status == 503, exc
            assert exc.retry_after is not None, "503 without Retry-After"
            assert elapsed < 5.0, f"503 took {elapsed:.1f}s — should be immediate"
        status = impatient.discover(fingerprints[1], config=dict(CONFIG))
        assert status["status"] == "done", status
        print("failover: dead shard 503s immediately, surviving shard serves")

        # --- recovery: the manager restarts it; state is reloaded ------
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if cluster_info(url)["healthy"] == REPLICAS:
                break
            time.sleep(0.5)
        else:
            raise SystemExit("replica was not restarted within 60s")
        status = client.discover(fingerprints[0], config=dict(CONFIG))
        assert status["status"] == "done", status
        assert status["cached"] is True, "restarted replica lost its store"
        print("recovery: replica restarted, served the persisted cover")
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            proc.kill()
    print("cluster smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
