"""Micro-benchmark: serial vs worker-pool validation and ranking.

Times DHyFD's level-validation workload and the redundancy-ranking
workload with ``jobs=1`` against a 4-worker shared-memory pool, asserts
the results are byte-identical, and records the speedups into
``benchmarks/out/parallel_speedups.txt``.

The >= 2x speedup gates only fire on machines with at least 4 CPU
cores — on smaller hosts (CI runners, containers) the identity checks
still run and the measured ratios are still recorded, but a pool
physically cannot beat the serial loop without cores to run on.
"""

from __future__ import annotations

import os
import time

from repro.bench.tables import format_table
from repro.core.dhyfd import DHyFD
from repro.core.validation import validate_fd
from repro.datasets.synthetic import random_relation
from repro.parallel import ParallelExecutor, merge_validation_outcomes, validate_level
from repro.partitions.stripped import StrippedPartition
from repro.ranking.redundancy import NullPolicy, redundancy_positions
from repro.relational import attrset
from repro.relational.fd import FD

from _utils import pick, write_artifact

#: (n_rows, domain) per scale; small domains keep clusters large, the
#: regime where per-candidate validation work dominates dispatch cost.
SHAPE = pick(smoke=(2_000, 4), quick=(20_000, 6), full=(120_000, 8))
N_COLS = 8
JOBS = 4
REPEATS = pick(smoke=2, quick=3, full=3)

#: The speedup assertions need real cores to stand on.
ENOUGH_CORES = (os.cpu_count() or 1) >= JOBS

_rows = []


def _relation():
    n_rows, domain = SHAPE
    return random_relation(n_rows, N_COLS, domain_sizes=domain, seed=7)


def _time(fn):
    """Best-of-N wall clock and the last result."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _record(op, serial_seconds, parallel_seconds):
    speedup = (
        serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    )
    _rows.append(
        [op, f"{serial_seconds:.4f}", f"{parallel_seconds:.4f}", f"{speedup:.1f}x"]
    )
    return speedup


def _validation_items(rel):
    """All pair-LHS candidates with their singleton-product partitions."""
    singles = [
        StrippedPartition.for_attribute(rel, a, backend="numpy")
        for a in range(N_COLS)
    ]
    items = []
    for i in range(N_COLS):
        for j in range(i + 1, N_COLS):
            lhs = attrset.from_attrs([i, j])
            rhs = attrset.complement(lhs, N_COLS)
            items.append((lhs, rhs, singles[i].intersect(singles[j])))
    return items


def test_level_validation_speedup():
    """A full level-2 validation sweep, serial loop vs 4-worker pool."""
    rel = _relation()
    items = _validation_items(rel)

    def serial():
        return merge_validation_outcomes(
            validate_fd(rel, lhs, rhs, part, backend="numpy")
            for lhs, rhs, part in items
        )

    def pooled():
        with ParallelExecutor(rel, jobs=JOBS, backend="numpy") as executor:
            return merge_validation_outcomes(validate_level(executor, items))

    serial_s, serial_r = _time(serial)
    pool_s, pool_r = _time(pooled)
    assert serial_r == pool_r
    speedup = _record(f"validation ({len(items)} candidates)", serial_s, pool_s)
    if ENOUGH_CORES:
        assert speedup >= 2.0, f"validation speedup only {speedup:.1f}x"


def test_redundancy_ranking_speedup():
    """Per-FD redundancy counting, serial loop vs one-FD-per-task pool.

    Dense random data holds no FDs, so the workload uses a synthetic
    pair-LHS cover — redundancy counting only needs the partitions, not
    FD validity, and one π_LHS per task is exactly the parallel unit.
    """
    rel = _relation()
    cover = [
        FD(attrset.from_attrs([i, j]), attrset.complement(attrset.from_attrs([i, j]), N_COLS))
        for i in range(N_COLS)
        for j in range(i + 1, N_COLS)
    ]

    serial_s, serial_r = _time(
        lambda: redundancy_positions(rel, cover, NullPolicy.INCLUDE, jobs=1)
    )
    pool_s, pool_r = _time(
        lambda: redundancy_positions(rel, cover, NullPolicy.INCLUDE, jobs=JOBS)
    )
    assert (serial_r == pool_r).all()
    speedup = _record(f"redundancy ({len(cover)} FDs)", serial_s, pool_s)
    if ENOUGH_CORES:
        assert speedup >= 2.0, f"redundancy speedup only {speedup:.1f}x"


def test_discovery_end_to_end_identical():
    """Full DHyFD with jobs=4: identical cover and stats, timed."""
    rel = _relation()
    serial_s, serial_r = _time(lambda: DHyFD(backend="numpy", jobs=1).discover(rel))
    pool_s, pool_r = _time(
        lambda: DHyFD(
            backend="numpy", jobs=JOBS, parallel_min_rows=0
        ).discover(rel)
    )
    assert set(serial_r.fds) == set(pool_r.fds)
    assert serial_r.stats.validations == pool_r.stats.validations
    assert serial_r.stats.comparisons == pool_r.stats.comparisons
    assert serial_r.stats.level_log == pool_r.stats.level_log
    _record("dhyfd end-to-end", serial_s, pool_s)


def teardown_module(module):
    write_artifact(
        "parallel_speedups",
        format_table(
            ["workload", "jobs=1 s", f"jobs={JOBS} s", "speedup"],
            _rows,
            title=f"Worker-pool micro-benchmarks, rows={SHAPE[0]}, "
            f"cols={N_COLS}, cores={os.cpu_count()}, "
            f"scale={pick('smoke', 'quick', 'full')}",
        ),
    )
