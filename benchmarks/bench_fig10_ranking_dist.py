"""Figure 10 — distribution of FDs over redundancy buckets + ranking time.

For each (incomplete) replica: rank the canonical cover, bucket the
per-FD redundancy counts at the paper's x-values (0, 2.5%, 5%, 10%,
15%, 20%, 40%, 60%, 80%, 100% of the maximum), and report the time to
compute all redundant occurrences.
"""

from __future__ import annotations

import pytest

from repro.algorithms import make_algorithm
from repro.bench.tables import format_table
from repro.covers.canonical import canonical_cover
from repro.datasets.benchmarks import load_benchmark
from repro.ranking.ranker import rank_cover, redundancy_histogram

from _utils import TIME_LIMIT, pick, write_artifact

DATASETS = pick(
    smoke=[("bridges", 50)],
    quick=[
        ("breast", None), ("bridges", None), ("echo", None),
        ("ncvoter", 400), ("hepatitis", 30), ("horse", 14),
        ("diabetic", 80), ("uniprot", 300), ("china", 300),
    ],
    full=[
        ("breast", None), ("bridges", None), ("echo", None),
        ("ncvoter", None), ("hepatitis", None), ("horse", None),
        ("diabetic", None), ("uniprot", None), ("china", None),
        ("plista", None), ("flight", None),
    ],
)

_blocks = []


@pytest.mark.parametrize("dataset,row_override", DATASETS)
def test_fig10_dataset(dataset, row_override, benchmark):
    relation = load_benchmark(dataset, n_rows=row_override)
    discovered = make_algorithm("dhyfd", time_limit=TIME_LIMIT).discover(relation)
    cover = canonical_cover(discovered.fds)

    ranking = benchmark.pedantic(
        lambda: rank_cover(relation, cover), rounds=1, iterations=1
    )
    buckets = redundancy_histogram([r.redundancy for r in ranking.ranked])

    assert sum(count for _, count in buckets) == len(ranking.ranked)

    table = format_table(
        ["<= redundancy", "#FDs"],
        buckets,
        title=(
            f"Fig. 10 — {dataset}: {len(cover)} FDs in canonical cover, "
            f"ranking time {ranking.seconds:.3f}s"
        ),
    )
    _blocks.append(table)


def teardown_module(module):
    write_artifact("fig10_ranking_dist", "\n\n".join(_blocks))
