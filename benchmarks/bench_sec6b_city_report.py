"""§VI-B — minimal LHSs determining `city` in ncvoter, with #red/#red-0.

Reproduces the paper's qualitative table: for the city column, each
minimal LHS from the canonical cover with its redundancy counts with
and without null involvement; null-free redundancy marks the more
trustworthy FDs.
"""

from __future__ import annotations

from repro.algorithms import make_algorithm
from repro.bench.tables import format_table
from repro.covers.canonical import canonical_cover
from repro.datasets.benchmarks import load_benchmark
from repro.ranking.report import column_determinants

from _utils import TIME_LIMIT, pick, write_artifact


def test_sec6b_city_determinants(benchmark):
    relation = load_benchmark("ncvoter", n_rows=pick(150, 600, 1000))
    discovered = make_algorithm("dhyfd", time_limit=TIME_LIMIT).discover(relation)
    cover = canonical_cover(discovered.fds)

    rows = benchmark.pedantic(
        lambda: column_determinants(relation, cover, "city"),
        rounds=1,
        iterations=1,
    )

    assert rows, "the replica must exhibit determinants for city"
    for row in rows:
        assert 0 <= row.red_null_free <= row.red

    table = format_table(
        ["minimal LHS for city", "#red", "#red-0"],
        [
            (relation.schema.format_attr_set(r.lhs), r.red, r.red_null_free)
            for r in rows
        ],
        title="§VI-B — minimal LHSs that determine city (ncvoter replica)",
    )
    write_artifact("sec6b_city_report", table)
