"""Micro-benchmark: rank-aware top-k discovery vs full discover + rank.

The question a ranked-discovery user actually asks is "show me the ten
most redundancy-laden FDs" — answering it with a full discovery plus a
full :func:`rank_cover` pass wastes almost all of its work on wide
relations, where the cover grows super-linearly with width while the
top of the ranking stays put.  ``discover_top_k(k)`` keeps a running
k-th redundancy and prunes candidate LHSs whose redundancy upper bound
(from stripped-partition cluster sizes) cannot reach it.

The workload is a wide synthetic relation built from two ingredients:

* five *group* columns ``i mod 2, 4, ..., 32`` — their pairwise FDs
  all carry redundancy ``n_rows``, filling the top-k immediately;
* many *near-key* columns ``i mod (n_rows - c_j)`` — each holds a
  handful of duplicate pairs, so every FD over them has tiny
  redundancy, yet together they span a large candidate lattice.

A rank-aware search can discard the whole near-key lattice from the
redundancy bound alone; the full pipeline must enumerate and rank it.

Assertions:

* the top-k FD set equals the first k of the fully ranked cover, and
  DHyFD's bound pruning actually fired — at every scale;
* the >= 3x wall-clock gate fires for DHyFD only above smoke scale,
  where relations are big enough for timings to mean anything (at the
  ``full`` scale the measured cut is >10x).  TANE's numbers are
  recorded but not gated: its level-wise sweep pays the level-2
  partition products before the tracker can fill, so its win is
  bounded by the skipped ranking pass (see docs/api.md).

Writes ``benchmarks/out/BENCH_topk.json`` (uploaded by CI alongside
``BENCH_load.json``) plus a human-readable table.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro.algorithms.tane import TANE
from repro.bench.tables import format_table
from repro.core.dhyfd import DHyFD
from repro.ranking.ranker import rank_cover
from repro.relational.fd import FDSet
from repro.relational.relation import Relation
from repro.relational.schema import RelationSchema

from _utils import OUT_DIR, SCALE, pick

K = 10
N_GROUPS = 5
#: (n_rows, n_near_keys) per scale; width is the lever that separates
#: the pipelines (cover size grows super-linearly with near-keys).
SHAPE = pick(smoke=(400, 8), quick=(2_000, 16), full=(6_000, 24))
REPEATS = pick(smoke=1, quick=2, full=3)

#: Timing gates need relations big enough to out-shout noise.
ASSERT_SPEEDUP = SCALE != "smoke"
MIN_SPEEDUP = 3.0

_results = {}


def wide_relation():
    n_rows, n_near = SHAPE
    names = [f"g{m}" for m in range(N_GROUPS)] + [f"u{j}" for j in range(n_near)]
    rows = []
    for i in range(n_rows):
        row = [i % (2 ** (m + 1)) for m in range(N_GROUPS)]
        for j in range(n_near):
            # i mod (n_rows - c): the last c rows duplicate early ones,
            # so ||pi_u|| = 2c — far below the n_rows threshold the
            # group columns establish.
            row.append(i % (n_rows - (11 + 7 * j)))
        rows.append(tuple(row))
    return Relation.from_rows(rows, RelationSchema(names))


def _time(fn):
    """Best-of-N wall clock and the last result."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _bench(name, factory, rel):
    full_s, (full, ranking) = _time(
        lambda: (lambda r: (r, rank_cover(rel, r.fds)))(factory().discover(rel))
    )
    topk_s, topk = _time(lambda: factory().discover_top_k(rel, K))

    # Exactness contract, asserted at every scale: the k returned FDs
    # are the first k of the full ranked cover (same tie-break).
    expected = FDSet(r.fd for r in ranking.ranked[:K])
    assert topk.fds == expected, f"{name}: top-{K} diverges from full ranking"
    assert topk.top_k == K

    speedup = full_s / topk_s if topk_s > 0 else float("inf")
    _results[name] = {
        "full_seconds": round(full_s, 4),
        "topk_seconds": round(topk_s, 4),
        "speedup": round(speedup, 2),
        "pruned_candidates": topk.stats.pruned_candidates,
        "cover_size": full.fd_count,
    }
    return speedup, topk


def test_dhyfd_topk_speedup():
    rel = wide_relation()
    speedup, topk = _bench("dhyfd", DHyFD, rel)
    assert topk.stats.pruned_candidates > 0, "bound pruning never fired"
    if ASSERT_SPEEDUP:
        assert speedup >= MIN_SPEEDUP, (
            f"dhyfd top-{K} speedup only {speedup:.1f}x "
            f"(full {_results['dhyfd']['full_seconds']}s vs "
            f"top-k {_results['dhyfd']['topk_seconds']}s)"
        )


def test_tane_topk_identical():
    rel = wide_relation()
    _bench("tane", TANE, rel)  # identity asserted inside; no timing gate


def teardown_module(module):
    n_rows, n_near = SHAPE
    report = {
        "bench": "topk",
        "scale": SCALE,
        "k": K,
        "relation": {
            "n_rows": n_rows,
            "n_cols": N_GROUPS + n_near,
            "group_columns": N_GROUPS,
            "near_key_columns": n_near,
        },
        "repeats": REPEATS,
        "speedup_gate": MIN_SPEEDUP if ASSERT_SPEEDUP else None,
        "env": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "algorithms": _results,
    }
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_topk.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    rows = [
        [
            name,
            f"{r['full_seconds']:.4f}",
            f"{r['topk_seconds']:.4f}",
            f"{r['speedup']:.1f}x",
            str(r["pruned_candidates"]),
            str(r["cover_size"]),
        ]
        for name, r in _results.items()
    ]
    print(
        "\n"
        + format_table(
            ["algorithm", "full+rank s", f"top-{K} s", "speedup", "pruned", "cover"],
            rows,
            title=f"Top-{K} discovery, rows={n_rows}, "
            f"cols={N_GROUPS + n_near}, scale={SCALE}",
        )
        + f"\n[written to {path}]"
    )
