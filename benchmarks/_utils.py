"""Shared helpers for the benchmark suite.

Every bench module regenerates one table or figure of the paper.  The
suite honours ``REPRO_BENCH_SCALE``:

* ``smoke`` — minimal fragments, seconds total (CI sanity);
* ``quick`` — the default; every experiment's *shape* at small scale;
* ``full``  — the registry's bench-scale rows everywhere (minutes).

Each module prints its paper-style table and also writes it under
``benchmarks/out/`` so a full run leaves artifacts behind.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")
if SCALE not in {"smoke", "quick", "full"}:
    raise ValueError(f"REPRO_BENCH_SCALE must be smoke/quick/full, got {SCALE}")

#: Wall-clock cap per (data set, algorithm) cell, mirroring the paper's
#: one-hour TL at bench scale.
TIME_LIMIT = {"smoke": 5.0, "quick": 20.0, "full": 120.0}[SCALE]

OUT_DIR = Path(__file__).parent / "out"


def pick(smoke, quick, full):
    """Select a per-scale value."""
    return {"smoke": smoke, "quick": quick, "full": full}[SCALE]


def write_artifact(name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")


def fmt(value: Optional[float], digits: int = 3) -> str:
    """Format a float cell, with '-' for missing."""
    if value is None:
        return "-"
    return f"{value:.{digits}f}"
