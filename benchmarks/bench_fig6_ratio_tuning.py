"""Figure 6 — DHyFD discovery time vs efficiency–inefficiency ratio.

The paper sweeps the ratio threshold on weather and uniprot and finds
ratio ≈ 3 a robust choice.  This bench reruns DHyFD across thresholds
on the same two replicas and prints the time series.
"""

from __future__ import annotations

import time

import pytest

from repro.algorithms import DHyFD
from repro.bench.tables import format_table
from repro.datasets.benchmarks import load_benchmark

from _utils import pick, write_artifact

RATIOS = [0.5, 1.0, 2.0, 2.5, 3.0, 4.0, 6.0, 10.0]

DATASETS = pick(
    smoke=[("weather", 300)],
    quick=[("weather", 1500), ("uniprot", 500)],
    full=[("weather", None), ("uniprot", None)],
)

_series = {}


@pytest.mark.parametrize("dataset,row_override", DATASETS)
def test_fig6_ratio_sweep(dataset, row_override, benchmark):
    relation = load_benchmark(dataset, n_rows=row_override)
    points = []
    baseline_fds = None
    for ratio in RATIOS:
        algo = DHyFD(ratio_threshold=ratio)
        start = time.perf_counter()
        result = algo.discover(relation)
        points.append((ratio, time.perf_counter() - start))
        if baseline_fds is None:
            baseline_fds = result.fds
        else:
            # the threshold is a performance knob, never a correctness one
            assert result.fds == baseline_fds
    _series[dataset] = points

    benchmark.pedantic(
        lambda: DHyFD(ratio_threshold=3.0).discover(relation),
        rounds=1,
        iterations=1,
    )


def teardown_module(module):
    lines = []
    for dataset, points in _series.items():
        lines.append(
            format_table(
                ["ratio", "seconds"],
                [(r, f"{s:.3f}") for r, s in points],
                title=f"Fig. 6 — {dataset}: DHyFD time vs ratio threshold",
            )
        )
    write_artifact("fig6_ratio_tuning", "\n\n".join(lines))
