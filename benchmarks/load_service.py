#!/usr/bin/env python
"""Open/closed-loop load generator for repro.service and repro.cluster.

The missing perf trajectory starts here: this harness drives
configurable concurrent query streams against either a single
``repro-fd serve`` process or a ``repro-fd cluster`` and writes
``BENCH_load.json`` — throughput, p50/p95/p99 latency, error rates and
the measured saturation point — so every later scaling PR has a
baseline number to beat.

Modes:

* **closed loop** (default): C worker streams, each issuing the next
  request the moment the previous one returns — measures capacity.
  With a ``--concurrency`` sweep (``1,2,4,8``) the harness walks up
  the curve and reports the saturation point (the first stage whose
  throughput gain over the previous stage falls under 10%).
* **open loop**: requests arrive on a fixed schedule (``--rate`` per
  second) regardless of completions — measures latency under a target
  load, queueing included.

The workload uploads ``--datasets`` distinct relations (spread across
shards by content fingerprint), optionally warms each one (so
steady-state measures request-serving capacity, not repeated
discovery), then issues ``discover`` requests round-robin with a
sprinkle of ``metrics`` reads.

Examples::

    # spawn a 2-replica cluster, sweep concurrency, write BENCH_load.json
    PYTHONPATH=src python benchmarks/load_service.py \
        --spawn cluster --replicas 2 --concurrency 1,2,4 --duration 5

    # closed loop against an already-running server
    PYTHONPATH=src python benchmarks/load_service.py \
        --server http://127.0.0.1:8765 --concurrency 8 --duration 10

    # open loop at 50 req/s
    PYTHONPATH=src python benchmarks/load_service.py \
        --spawn single --mode open --rate 50 --duration 10
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import threading
import time
from datetime import datetime, timezone
from typing import Dict, List, Optional, Tuple

from repro.datasets import load_benchmark
from repro.service import ServiceClient, ServiceError

#: Fraction of requests that read /metrics instead of running a job —
#: keeps the observability path honest under load.
METRICS_MIX = 0.1


# ----------------------------------------------------------------------
# Target lifecycle
# ----------------------------------------------------------------------


def _spawn(command: List[str]) -> Tuple[subprocess.Popen, str]:
    """Start a server/cluster subprocess and parse its announced URL."""
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ},
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise SystemExit(f"target died on startup (rc={proc.returncode})")
        if "listening on " in line:
            url = line.split("listening on ", 1)[1].split()[0]
            threading.Thread(
                target=lambda: [None for _ in proc.stdout],
                name="load-target-stdout",
                daemon=True,
            ).start()
            return proc, url
    proc.kill()
    raise SystemExit("target did not announce its URL within 60s")


def spawn_target(args: argparse.Namespace) -> Tuple[Optional[subprocess.Popen], str, str]:
    """Resolve --server / --spawn into (process-or-None, url, kind)."""
    if args.server:
        return None, args.server, "external"
    if args.spawn == "cluster":
        command = [
            sys.executable,
            "-m",
            "repro",
            "cluster",
            "--replicas",
            str(args.replicas),
            "--router-port",
            "0",
            "--max-workers",
            str(args.max_workers),
        ]
        proc, url = _spawn(command)
        return proc, url, "cluster"
    command = [
        sys.executable,
        "-m",
        "repro",
        "serve",
        "--port",
        "0",
        "--max-workers",
        str(args.max_workers),
    ]
    proc, url = _spawn(command)
    return proc, url, "single"


# ----------------------------------------------------------------------
# Workload
# ----------------------------------------------------------------------


def upload_datasets(client: ServiceClient, args: argparse.Namespace) -> List[str]:
    """Upload ``--datasets`` distinct relations; returns fingerprints.

    Each dataset is the benchmark replica at a different row count, so
    contents (and therefore fingerprints — and shard placement) differ.
    """
    fingerprints = []
    for index in range(args.datasets):
        relation = load_benchmark(args.benchmark, n_rows=args.rows + index)
        info = client.upload_rows(
            relation.schema.names,
            list(relation.iter_rows()),
            name=f"{args.benchmark}-{index}",
        )
        fingerprints.append(info["fingerprint"])
    return fingerprints


def warm(client: ServiceClient, fingerprints: List[str], config: Dict[str, object]) -> None:
    """One discover per dataset so steady state serves from the store."""
    for fingerprint in fingerprints:
        status = client.discover(fingerprint, config=dict(config))
        if status["status"] != "done":
            raise SystemExit(f"warmup job failed: {status}")


class StreamStats:
    """Latencies and errors collected by one or more query streams."""

    def __init__(self):
        self.lock = threading.Lock()
        self.latencies: List[float] = []
        self.errors = 0
        self.error_kinds: Dict[str, int] = {}

    def ok(self, seconds: float) -> None:
        with self.lock:
            self.latencies.append(seconds)

    def fail(self, kind: str) -> None:
        with self.lock:
            self.errors += 1
            self.error_kinds[kind] = self.error_kinds.get(kind, 0) + 1


def _percentile(ordered: List[float], q: float) -> float:
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _one_request(
    client: ServiceClient,
    fingerprints: List[str],
    config: Dict[str, object],
    counter: int,
    stats: StreamStats,
) -> None:
    start = time.perf_counter()
    try:
        if counter % int(1 / METRICS_MIX) == 0:
            client.metrics()
        else:
            fingerprint = fingerprints[counter % len(fingerprints)]
            status = client.discover(fingerprint, config=dict(config))
            if status["status"] != "done":
                stats.fail(f"job-{status['status']}")
                return
        stats.ok(time.perf_counter() - start)
    except ServiceError as exc:
        stats.fail(f"http-{exc.status}" if exc.status else "transport")
    except Exception as exc:  # noqa: BLE001 — harness keeps going
        stats.fail(type(exc).__name__)


def run_closed_stage(
    url: str,
    fingerprints: List[str],
    config: Dict[str, object],
    concurrency: int,
    duration: float,
    timeout: float,
) -> Dict[str, object]:
    """C streams, each issuing back-to-back requests for ``duration``."""
    stats = StreamStats()
    stop = threading.Event()

    def stream(stream_index: int) -> None:
        client = ServiceClient(url, timeout=timeout, retries=2, backoff=0.1)
        counter = stream_index + 1
        while not stop.is_set():
            _one_request(client, fingerprints, config, counter, stats)
            counter += concurrency

    threads = [
        threading.Thread(target=stream, args=(i,), name=f"load-stream-{i}", daemon=True)
        for i in range(concurrency)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join(timeout=timeout + 5.0)
    elapsed = time.perf_counter() - start
    return _stage_payload({"concurrency": concurrency}, stats, elapsed)


def run_open_stage(
    url: str,
    fingerprints: List[str],
    config: Dict[str, object],
    rate: float,
    duration: float,
    timeout: float,
) -> Dict[str, object]:
    """Fixed arrival schedule: ``rate`` requests/s for ``duration``."""
    stats = StreamStats()
    client = ServiceClient(url, timeout=timeout, retries=2, backoff=0.1)
    threads: List[threading.Thread] = []
    interval = 1.0 / rate
    start = time.perf_counter()
    counter = 0
    while True:
        now = time.perf_counter() - start
        if now >= duration:
            break
        target = counter * interval
        if target > now:
            time.sleep(target - now)
        counter += 1
        thread = threading.Thread(
            target=_one_request,
            args=(client, fingerprints, config, counter, stats),
            daemon=True,
        )
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=timeout + 5.0)
    elapsed = time.perf_counter() - start
    payload = _stage_payload({"rate_target_rps": rate}, stats, elapsed)
    payload["offered_rps"] = round(counter / elapsed, 2)
    return payload


def _stage_payload(
    head: Dict[str, object], stats: StreamStats, elapsed: float
) -> Dict[str, object]:
    ordered = sorted(stats.latencies)
    requests = len(ordered) + stats.errors
    payload = dict(head)
    payload.update(
        {
            "duration_s": round(elapsed, 3),
            "requests": requests,
            "errors": stats.errors,
            "error_kinds": stats.error_kinds,
            "throughput_rps": round(len(ordered) / elapsed, 2) if elapsed else 0.0,
            "latency_ms": {
                "p50": round(_percentile(ordered, 0.50) * 1000, 2),
                "p95": round(_percentile(ordered, 0.95) * 1000, 2),
                "p99": round(_percentile(ordered, 0.99) * 1000, 2),
                "mean": round(
                    (sum(ordered) / len(ordered) * 1000) if ordered else 0.0, 2
                ),
                "max": round((ordered[-1] * 1000) if ordered else 0.0, 2),
            },
        }
    )
    return payload


def find_saturation(stages: List[Dict[str, object]]) -> Optional[Dict[str, object]]:
    """First sweep stage whose throughput gain drops under 10%."""
    for previous, current in zip(stages, stages[1:]):
        prev_rps = previous["throughput_rps"] or 0.0001
        gain = (current["throughput_rps"] - prev_rps) / prev_rps
        if gain < 0.10:
            return {
                "concurrency": current["concurrency"],
                "throughput_rps": current["throughput_rps"],
                "gain_over_previous": round(gain, 4),
            }
    return None


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    target = parser.add_mutually_exclusive_group()
    target.add_argument("--server", default=None, help="base URL of a running target")
    target.add_argument(
        "--spawn",
        default="cluster",
        choices=["single", "cluster"],
        help="boot the target as a subprocess (default: cluster)",
    )
    parser.add_argument("--replicas", type=int, default=2, help="cluster shard count")
    parser.add_argument(
        "--max-workers", type=int, default=2, help="scheduler workers per replica"
    )
    parser.add_argument("--mode", default="closed", choices=["closed", "open"])
    parser.add_argument(
        "--concurrency",
        default="1,2,4,8",
        help="closed loop: comma-separated stream counts to sweep",
    )
    parser.add_argument(
        "--rate", type=float, default=20.0, help="open loop: arrivals per second"
    )
    parser.add_argument(
        "--duration", type=float, default=10.0, help="seconds per stage"
    )
    parser.add_argument("--benchmark", default="iris", help="benchmark replica to serve")
    parser.add_argument("--rows", type=int, default=60, help="base rows per dataset")
    parser.add_argument(
        "--datasets", type=int, default=4, help="distinct datasets spread over shards"
    )
    parser.add_argument(
        "--algorithm", default="dhyfd", help="discovery algorithm under load"
    )
    parser.add_argument(
        "--cold",
        action="store_true",
        help="skip warmup: every stream request may trigger real discovery",
    )
    parser.add_argument(
        "--timeout", type=float, default=120.0, help="per-request client timeout"
    )
    parser.add_argument(
        "--out",
        default="BENCH_load.json",
        help="write the JSON report here (default: BENCH_load.json)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    proc, url, kind = spawn_target(args)
    config = {"algorithm": args.algorithm}
    try:
        client = ServiceClient(url, timeout=args.timeout, retries=2, backoff=0.2)
        print(f"target: {kind} at {url}")
        fingerprints = upload_datasets(client, args)
        print(f"uploaded {len(fingerprints)} datasets ({args.benchmark}, base rows {args.rows})")
        if not args.cold:
            warm(client, fingerprints, config)
            print("warmed: every dataset has a stored cover")

        stages: List[Dict[str, object]] = []
        if args.mode == "closed":
            levels = [int(level) for level in args.concurrency.split(",") if level]
            for level in levels:
                stage = run_closed_stage(
                    url, fingerprints, config, level, args.duration, args.timeout
                )
                stages.append(stage)
                print(
                    f"closed c={level}: {stage['throughput_rps']} req/s, "
                    f"p50={stage['latency_ms']['p50']}ms "
                    f"p95={stage['latency_ms']['p95']}ms "
                    f"p99={stage['latency_ms']['p99']}ms "
                    f"errors={stage['errors']}"
                )
            saturation = find_saturation(stages)
        else:
            stage = run_open_stage(
                url, fingerprints, config, args.rate, args.duration, args.timeout
            )
            stages.append(stage)
            saturation = None
            print(
                f"open rate={args.rate}/s (offered {stage['offered_rps']}/s): "
                f"{stage['throughput_rps']} req/s done, "
                f"p50={stage['latency_ms']['p50']}ms "
                f"p99={stage['latency_ms']['p99']}ms errors={stage['errors']}"
            )

        report = {
            "benchmark": "load_service",
            "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
            "target": {
                "kind": kind,
                "url": url,
                "replicas": args.replicas if kind == "cluster" else 1,
                "max_workers": args.max_workers,
            },
            "workload": {
                "mode": args.mode,
                "benchmark": args.benchmark,
                "base_rows": args.rows,
                "datasets": args.datasets,
                "algorithm": args.algorithm,
                "warm": not args.cold,
                "metrics_mix": METRICS_MIX,
                "duration_per_stage_s": args.duration,
            },
            "stages": stages,
            "saturation": saturation,
            "environment": {
                "python": platform.python_version(),
                "platform": platform.platform(),
                "cpus": os.cpu_count(),
            },
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
        if saturation is not None:
            print(
                f"saturation: c={saturation['concurrency']} at "
                f"{saturation['throughput_rps']} req/s"
            )
        total_errors = sum(stage["errors"] for stage in stages)
        total_requests = sum(stage["requests"] for stage in stages)
        if total_requests == 0 or total_errors > total_requests * 0.05:
            print(f"FAILED: {total_errors}/{total_requests} requests errored")
            return 1
        return 0
    finally:
        if proc is not None:
            proc.terminate()
            try:
                proc.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                proc.kill()


if __name__ == "__main__":
    sys.exit(main())
