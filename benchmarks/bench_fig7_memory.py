"""Figure 7 — memory of HyFD vs DHyFD over row and column fragments.

The paper shows DHyFD spending conservatively more memory than HyFD for
solid speedups (PIR vs MIR).  This bench sweeps weather row fragments
and diabetic column fragments, recording tracemalloc peaks and the
performance/memory increase rates.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_discovery
from repro.bench.tables import format_table
from repro.datasets.benchmarks import load_benchmark

from _utils import TIME_LIMIT, pick, write_artifact

ROW_AXIS = pick(
    smoke=[200, 400],
    quick=[500, 1000, 2000, 3000],
    full=[1000, 2000, 4000, 8000],
)
COL_AXIS = pick(
    smoke=[6, 10],
    quick=[8, 12, 16, 22],
    full=[10, 15, 20, 25, 30],
)
DIABETIC_ROWS = pick(smoke=80, quick=150, full=400)

_rows_table = []
_cols_table = []


def _measure_pair(relation, dataset):
    cells = {}
    for algorithm in ("hyfd", "dhyfd"):
        record, _ = run_discovery(
            relation, algorithm, dataset=dataset, time_limit=TIME_LIMIT
        )
        cells[algorithm] = record
    hyfd, dhyfd = cells["hyfd"], cells["dhyfd"]
    pir = mir = None
    if not hyfd.timed_out and not dhyfd.timed_out and hyfd.seconds:
        pir = (hyfd.seconds - dhyfd.seconds) / hyfd.seconds
        if dhyfd.peak_memory_bytes:
            mir = (
                dhyfd.peak_memory_bytes - hyfd.peak_memory_bytes
            ) / dhyfd.peak_memory_bytes
    return hyfd, dhyfd, pir, mir


@pytest.mark.parametrize("n_rows", ROW_AXIS)
def test_fig7_weather_rows(n_rows, benchmark):
    relation = load_benchmark("weather", n_rows=n_rows)
    hyfd, dhyfd, pir, mir = _measure_pair(relation, "weather")
    _rows_table.append(
        [
            n_rows,
            hyfd.memory_mb_text,
            dhyfd.memory_mb_text,
            hyfd.seconds_text,
            dhyfd.seconds_text,
            f"{pir:.2f}" if pir is not None else "-",
            f"{mir:.2f}" if mir is not None else "-",
        ]
    )
    benchmark.pedantic(
        lambda: run_discovery(
            relation, "dhyfd", dataset="weather",
            time_limit=TIME_LIMIT, track_memory=False,
        ),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("n_cols", COL_AXIS)
def test_fig7_diabetic_cols(n_cols, benchmark):
    base = load_benchmark("diabetic", n_rows=DIABETIC_ROWS)
    relation = base.project_columns(list(range(n_cols)))
    hyfd, dhyfd, pir, mir = _measure_pair(relation, "diabetic")
    _cols_table.append(
        [
            n_cols,
            hyfd.memory_mb_text,
            dhyfd.memory_mb_text,
            hyfd.seconds_text,
            dhyfd.seconds_text,
            f"{pir:.2f}" if pir is not None else "-",
            f"{mir:.2f}" if mir is not None else "-",
        ]
    )
    benchmark.pedantic(
        lambda: run_discovery(
            relation, "dhyfd", dataset="diabetic",
            time_limit=TIME_LIMIT, track_memory=False,
        ),
        rounds=1,
        iterations=1,
    )


def teardown_module(module):
    headers = ["axis", "MB hyfd", "MB dhyfd", "s hyfd", "s dhyfd", "PIR", "MIR"]
    text = format_table(
        headers, _rows_table, title="Fig. 7 (left) — weather row fragments"
    )
    text += "\n\n" + format_table(
        headers, _cols_table,
        title=f"Fig. 7 (right) — diabetic column fragments ({DIABETIC_ROWS} rows)",
    )
    write_artifact("fig7_memory", text)
