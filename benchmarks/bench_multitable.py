"""Micro-benchmark: join-FD discovery, virtual vs materialized join.

``repro.multitable`` claims two things (docs/multitable.md): the
lifted relation is *byte-identical* to the materialized join — same
fingerprint, same cover, same ranked order — and the virtual path
never pays for the join itself, only for the lifted code arrays.

The workload is the star schema (``repro.datasets.star``): one
expand step (authors fan out over posts) and one forward step (posts
resolve subreddits) under ``on_dangling="pad"``, so the join is
larger than any base table and carries outer-join nulls.

Assertions:

* identity at every scale: lifted fingerprint == materialized
  fingerprint, covers and ranked orders byte-identical, and the
  virtual path emits **zero** ``multitable.materialize`` telemetry
  events (the materialized oracle announces itself; silence proves
  the join was never built);
* above smoke scale, *join construction* (provenance + lift) beats
  the real hash join on both tracemalloc peak memory and wall time —
  the materialized path pays for decoded Python row tuples plus a
  full re-encode before discovery even starts — and the end-to-end
  pipelines (which share the identical discovery + ranking cost) stay
  within noise of each other.

Writes ``benchmarks/out/BENCH_multitable.json`` (uploaded by CI) plus
a human-readable table.
"""

from __future__ import annotations

import json
import os
import platform
import time
import tracemalloc

from repro import memplane
from repro.algorithms.registry import make_algorithm
from repro.bench.tables import format_table
from repro.datasets.star import STAR_PATH, reddit_star_graph
from repro.multitable import (
    build_provenance,
    discover_join_fds,
    lift_relation,
    materialize_join,
)
from repro.ranking.ranker import rank_cover
from repro.relational.fd_io import cover_to_json
from repro.telemetry import Tracer, use_tracer

from _utils import OUT_DIR, SCALE, pick

#: Fact-table rows per scale (authors = posts/4, subreddits = posts/50).
N_POSTS = pick(smoke=300, quick=1_500, full=4_000)
#: Best-of batches per path (same role as bench_topk's REPEATS).
REPEATS = pick(smoke=1, quick=2, full=3)

#: Timing/memory gates need joins big enough to out-shout noise.
ASSERT_WINS = SCALE != "smoke"
#: Join construction alone — provenance + lift vs the real hash join —
#: is where the virtual path wins structurally (no decoded row tuples,
#: no re-encode).  Measured at quick scale: ~3.3x / ~1.6x.
MIN_JOIN_TIME_RATIO = 2.0
MIN_JOIN_MEM_RATIO = 1.3
#: End to end both sides pay the identical discovery + ranking, which
#: dominates the profile, so the ratio hovers around 1.0 and jitters
#: with discovery timing (measured spread on a loaded single-core
#: runner: 0.90x-1.24x time, 0.98x-1.16x memory).  These are loose
#: backstops against the virtual path becoming pathologically slower,
#: not win gates — the win gate is the join stage above.
MIN_TIME_RATIO = 0.75
MIN_MEM_RATIO = 0.85

_results = {}


def star_graph():
    return reddit_star_graph(n_posts=N_POSTS, seed=7)


def virtual_join(graph):
    """Join construction only: provenance + lift (no discovery)."""
    return lift_relation(
        graph, build_provenance(graph, STAR_PATH, on_dangling="pad")
    )


def materialized_join(graph):
    return materialize_join(graph, STAR_PATH, on_dangling="pad")


def virtual_pipeline(graph):
    """The multitable path: provenance + lift + discover + rank."""
    return discover_join_fds(graph, STAR_PATH, on_dangling="pad")


def materialized_pipeline(graph):
    """The strawman: really build the join, then the same pipeline."""
    joined = materialize_join(graph, STAR_PATH, on_dangling="pad")
    discovery = make_algorithm("dhyfd").discover(joined)
    ranking = rank_cover(joined, discovery.fds)
    return joined, discovery, ranking


def ranked_snapshot(ranking):
    return tuple(
        (entry.fd, entry.redundancy, entry.redundancy_excluding_null)
        for entry in ranking.ranked
    )


def timed(fn, *args):
    """Best-of-REPEATS *cold* wall clock plus the last return value.

    Both pipelines produce fingerprint-identical relations, so with
    the memory plane on the second path would inherit the first's
    warm shared partition tier — the comparison must run cold.
    """
    best, value = float("inf"), None
    memplane.set_enabled(False)
    try:
        for _ in range(REPEATS):
            memplane.reset_tiers()
            start = time.perf_counter()
            value = fn(*args)
            best = min(best, time.perf_counter() - start)
    finally:
        memplane.set_enabled(None)
        memplane.reset_tiers()
    return best, value


def peak_memory(fn, *args):
    """tracemalloc peak (bytes) of one cold run."""
    memplane.set_enabled(False)
    tracemalloc.start()
    try:
        memplane.reset_tiers()
        tracemalloc.reset_peak()
        fn(*args)
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
        memplane.set_enabled(None)
        memplane.reset_tiers()


def test_identity_and_never_materializes():
    graph = star_graph()

    tracer = Tracer()
    with use_tracer(tracer):
        virtual = virtual_pipeline(graph)
    materialize_events = tracer.counter("multitable.materialize.calls").value
    assert materialize_events == 0, "virtual path built the join"

    joined, discovery, ranking = materialized_pipeline(graph)
    assert virtual.relation.fingerprint() == joined.fingerprint()
    assert cover_to_json(
        virtual.discovery.fds, virtual.relation.schema
    ) == cover_to_json(discovery.fds, joined.schema)
    assert ranked_snapshot(virtual.ranking) == ranked_snapshot(ranking)

    _results["identity"] = {
        "n_join_rows": virtual.provenance.n_rows,
        "padded_cells": virtual.provenance.padded_cells,
        "cover_size": len(discovery.fds),
        "intra": virtual.intra_count,
        "inter": virtual.inter_count,
        "materialize_events_on_virtual_path": materialize_events,
    }


def compare(key, virtual_fn, materialized_fn, min_time, min_mem):
    graph = star_graph()
    virtual_s, _ = timed(virtual_fn, graph)
    materialized_s, _ = timed(materialized_fn, graph)
    virtual_peak = peak_memory(virtual_fn, graph)
    materialized_peak = peak_memory(materialized_fn, graph)

    time_ratio = materialized_s / virtual_s if virtual_s > 0 else float("inf")
    mem_ratio = (
        materialized_peak / virtual_peak if virtual_peak > 0 else float("inf")
    )
    _results[key] = {
        "repeats": REPEATS,
        "virtual_seconds": round(virtual_s, 4),
        "materialized_seconds": round(materialized_s, 4),
        "time_ratio": round(time_ratio, 2),
        "virtual_peak_bytes": virtual_peak,
        "materialized_peak_bytes": materialized_peak,
        "memory_ratio": round(mem_ratio, 2),
    }
    if ASSERT_WINS:
        assert time_ratio >= min_time, (
            f"{key}: virtual only {time_ratio:.2f}x faster "
            f"({virtual_s:.3f}s vs {materialized_s:.3f}s)"
        )
        assert mem_ratio >= min_mem, (
            f"{key}: virtual only {mem_ratio:.2f}x smaller at peak "
            f"({virtual_peak} vs {materialized_peak} bytes)"
        )


def test_join_construction_wins():
    """Provenance + lift vs the real hash join, nothing else."""
    compare(
        "join", virtual_join, materialized_join,
        MIN_JOIN_TIME_RATIO, MIN_JOIN_MEM_RATIO,
    )


def test_virtual_beats_materialized():
    """End to end: both sides pay the same discovery + ranking."""
    compare(
        "pipeline", virtual_pipeline, materialized_pipeline,
        MIN_TIME_RATIO, MIN_MEM_RATIO,
    )


def teardown_module(module):
    report = {
        "bench": "multitable",
        "scale": SCALE,
        "workload": {
            "star_n_posts": N_POSTS,
            "path": list(STAR_PATH),
            "on_dangling": "pad",
        },
        "gates": {
            "join_time_ratio": MIN_JOIN_TIME_RATIO if ASSERT_WINS else None,
            "join_memory_ratio": MIN_JOIN_MEM_RATIO if ASSERT_WINS else None,
            "time_ratio": MIN_TIME_RATIO if ASSERT_WINS else None,
            "memory_ratio": MIN_MEM_RATIO if ASSERT_WINS else None,
        },
        "env": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "results": _results,
    }
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_multitable.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    rows = []
    for key, label in (("join", "join only"), ("pipeline", "discover + rank")):
        if key not in _results:
            continue
        r = _results[key]
        rows.append(
            [
                label,
                f"{r['virtual_seconds']:.4f}s / {r['virtual_peak_bytes'] // 1024}KiB",
                f"{r['materialized_seconds']:.4f}s / "
                f"{r['materialized_peak_bytes'] // 1024}KiB",
                f"{r['time_ratio']:.2f}x / {r['memory_ratio']:.2f}x",
            ]
        )
    if "identity" in _results:
        r = _results["identity"]
        rows.append(
            [
                "identity",
                f"{r['n_join_rows']} join rows",
                f"{r['cover_size']} FDs "
                f"({r['intra']} intra / {r['inter']} inter)",
                "byte-identical",
            ]
        )
    print(
        "\n"
        + format_table(
            ["workload", "virtual join", "materialized join", "win"],
            rows,
            title=f"Virtual vs materialized join, posts={N_POSTS}, "
            f"scale={SCALE}",
        )
        + f"\n[written to {path}]"
    )
