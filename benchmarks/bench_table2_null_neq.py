"""Table II variant — null ≠ null semantics (paper §V-B / TR).

The paper reports that under null ≠ null more FDs tend to hold and
runtimes grow on larger data, with the same relative algorithm
ordering.  This bench re-runs a null-bearing subset of the replicas
under both semantics and prints the side-by-side comparison.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_discovery
from repro.bench.tables import format_table
from repro.datasets.benchmarks import load_benchmark

from _utils import TIME_LIMIT, pick, write_artifact

ALGORITHMS = ["fdep2", "hyfd", "dhyfd"]

DATASETS = pick(
    smoke=[("bridges", 50)],
    quick=[
        ("breast", None), ("bridges", None), ("echo", None),
        ("ncvoter", 400), ("hepatitis", 45), ("horse", 26),
        ("uniprot", 300), ("china", 300),
    ],
    full=[
        ("breast", None), ("bridges", None), ("echo", None),
        ("ncvoter", None), ("hepatitis", None), ("horse", None),
        ("uniprot", None), ("china", None),
    ],
)

_rows = []


@pytest.mark.parametrize("dataset,row_override", DATASETS)
def test_null_neq_dataset(dataset, row_override, benchmark):
    relation_eq = load_benchmark(dataset, n_rows=row_override)
    relation_neq = relation_eq.with_semantics("neq")

    row = [dataset, relation_eq.n_rows, relation_eq.n_cols]
    fd_counts = {}
    for semantics, relation in (("eq", relation_eq), ("neq", relation_neq)):
        counts = set()
        for algorithm in ALGORITHMS:
            record, result = run_discovery(
                relation, algorithm, dataset=dataset,
                time_limit=TIME_LIMIT, track_memory=False,
            )
            row.append(record.seconds_text)
            if result is not None:
                counts.add(result.fd_count)
        assert len(counts) <= 1, f"{dataset}/{semantics}: disagreement {counts}"
        fd_counts[semantics] = counts.pop() if counts else "-"
    row.insert(3, fd_counts["eq"])
    row.insert(4, fd_counts["neq"])
    _rows.append(row)

    benchmark.pedantic(
        lambda: run_discovery(
            relation_neq, "dhyfd", dataset=dataset,
            time_limit=TIME_LIMIT, track_memory=False,
        ),
        rounds=1,
        iterations=1,
    )


def teardown_module(module):
    headers = ["dataset", "#R", "#C", "#FD eq", "#FD neq"] + [
        f"{a} {s}" for s in ("eq", "neq") for a in ALGORITHMS
    ]
    write_artifact(
        "table2_null_neq",
        format_table(headers, _rows, title="Table II under null != null"),
    )
