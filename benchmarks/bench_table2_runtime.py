"""Table II — runtime and memory of all algorithms, null = null.

Regenerates the paper's main results table on the benchmark replicas:
one row per data set with #R, #C, #FD and per-algorithm runtimes
(seconds, or TL), plus peak-memory columns for HyFD and DHyFD.
"""

from __future__ import annotations

import pytest

from repro.bench.runner import run_discovery
from repro.bench.tables import format_table
from repro.datasets.benchmarks import get_spec, load_benchmark

from _utils import TIME_LIMIT, pick, write_artifact

ALGORITHMS = ["tane", "fdep", "fdep1", "fdep2", "hyfd", "dhyfd"]

#: (dataset, row override or None for bench default) per scale.
DATASETS = pick(
    smoke=[("iris", 60), ("bridges", 50), ("ncvoter", 120)],
    quick=[
        ("iris", None), ("balance", None), ("chess", 800),
        ("abalone", 800), ("nursery", 800), ("breast", None),
        ("bridges", None), ("echo", None), ("adult", 1000),
        ("letter", 1000), ("ncvoter", 400), ("hepatitis", 50),
        ("horse", 30), ("plista", 24), ("flight", 28),
        ("fd_reduced", 800), ("weather", 1000), ("diabetic", 200),
        ("pdbx", 1500), ("lineitem", 1000), ("uniprot", 400),
    ],
    full=[
        (name, None)
        for name in [
            "iris", "balance", "chess", "abalone", "nursery", "breast",
            "bridges", "echo", "adult", "letter", "ncvoter", "hepatitis",
            "horse", "plista", "flight", "fd_reduced", "weather",
            "diabetic", "pdbx", "lineitem", "uniprot",
        ]
    ],
)

_rows = []


@pytest.mark.parametrize("dataset,row_override", DATASETS)
def test_table2_dataset(dataset, row_override, benchmark):
    """One Table II row: run every algorithm on the replica."""
    relation = load_benchmark(dataset, n_rows=row_override)
    spec = get_spec(dataset)

    # Times are measured without tracemalloc (it inflates allocation-
    # heavy algorithms); the paper's memory columns (HyFD, DHyFD) come
    # from a separate tracked pass.
    cells = {"memory": {}}
    fd_counts = set()
    for algorithm in ALGORITHMS:
        record, result = run_discovery(
            relation, algorithm, dataset=dataset,
            time_limit=TIME_LIMIT, track_memory=False,
        )
        cells[algorithm] = record.seconds_text
        if result is not None:
            fd_counts.add(result.fd_count)
    for algorithm in ("hyfd", "dhyfd"):
        record, _ = run_discovery(
            relation, algorithm, dataset=dataset, time_limit=TIME_LIMIT
        )
        cells["memory"][algorithm] = record.memory_mb_text

    # correctness cross-check: every algorithm that finished agrees
    assert len(fd_counts) == 1, f"{dataset}: disagreeing FD counts {fd_counts}"
    fd_count = fd_counts.pop()

    # the timed headline measurement: DHyFD end to end
    benchmark.pedantic(
        lambda: run_discovery(
            relation, "dhyfd", dataset=dataset,
            time_limit=TIME_LIMIT, track_memory=False,
        ),
        rounds=1,
        iterations=1,
    )

    _rows.append(
        [
            dataset,
            relation.n_rows,
            relation.n_cols,
            fd_count,
            spec.paper_fds if spec.paper_fds is not None else "-",
        ]
        + [cells[a] for a in ALGORITHMS]
        + [cells["memory"]["hyfd"], cells["memory"]["dhyfd"]]
    )


def teardown_module(module):
    headers = (
        ["dataset", "#R", "#C", "#FD", "#FD(paper)"]
        + ALGORITHMS
        + ["MB hyfd", "MB dhyfd"]
    )
    write_artifact(
        "table2_runtime",
        format_table(
            headers,
            _rows,
            title=f"Table II (null = null), scale={pick('smoke', 'quick', 'full')}, "
            f"TL={TIME_LIMIT}s",
        ),
    )
