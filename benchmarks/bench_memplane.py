"""Micro-benchmark: repeated discovery jobs over a registered dataset.

The memory plane (docs/memplane.md) gives every job on a host the same
two shared tiers: the dataset arena (one shm copy of the encoded
columns, attached — not copied — per job) and the shared partition
tier (singleton and low-arity stripped partitions, derived once and
reused across jobs).  The workload this pays for is the service's
steady state: many small profiling jobs against a dataset that was
registered once.

The job here is the paper's full per-dataset pipeline — discovery,
canonical cover, redundancy ranking (Table IV) and the §VI-B column
report for every column — over a near-key synthetic relation whose
singleton partitions are expensive to derive and cheap to reuse.

Assertions:

* covers, rankings, redundancy counts and column reports are
  byte-identical between the memplane-off and memplane-on (cold and
  warm) paths — at every scale;
* per-job relation buffers attach to the registered arena copy when
  the plane is on and fall back to a private copy when it is off —
  at every scale;
* the >= 2x throughput gate on repeated warm jobs fires only above
  smoke scale, where relations are big enough for wall-clock to mean
  anything (measured cut at the ``full`` scale is >2.5x).

Writes ``benchmarks/out/BENCH_memplane.json`` (uploaded by CI) plus a
human-readable table.
"""

from __future__ import annotations

import json
import os
import platform
import time

from repro import memplane
from repro.bench.tables import format_table
from repro.datasets.synthetic import random_relation
from repro.parallel.shm import SharedRelationBuffers
from repro.profiling.profiler import profile
from repro.ranking.report import column_determinants

from _utils import OUT_DIR, SCALE, pick

#: (n_rows, n_cols, domain size) per scale.  Near-key regime: domain
#: ~ sqrt(rows) makes the singleton partitions large and expensive —
#: exactly the state the shared tier keeps warm between jobs.
SHAPE = pick(smoke=(2_000, 7, 45), quick=(12_000, 7, 110), full=(14_000, 7, 118))
#: Jobs per timed batch ("repeated small discovery jobs").
JOBS = pick(smoke=2, quick=3, full=4)
#: Best-of batches per mode (same role as bench_topk's REPEATS).
REPEATS = pick(smoke=1, quick=2, full=2)
#: Buffer attach/copy setups per timed batch.
SETUPS = pick(smoke=5, quick=20, full=40)

#: Timing gates need relations big enough to out-shout noise.
ASSERT_SPEEDUP = SCALE != "smoke"
MIN_SPEEDUP = 2.0

_results = {}


def near_key_relation():
    n_rows, n_cols, domain = SHAPE
    return random_relation(n_rows, n_cols, domain_sizes=domain, seed=7)


def job(rel):
    """One full profiling job: discover + covers + rank + §VI-B reports."""
    prof = profile(rel)
    reports = [
        column_determinants(rel, prof.canonical, column)
        for column in range(rel.n_cols)
    ]
    return prof, reports


def snapshot(prof, reports):
    """Everything a client would see, in comparable form."""
    return (
        frozenset(prof.canonical),
        tuple(
            (r.fd, r.redundancy, r.redundancy_excluding_null)
            for r in prof.ranking.ranked
        ),
        (prof.redundancy.red_including_null, prof.redundancy.red_excluding_null),
        tuple(tuple(report) for report in reports),
    )


def run_jobs(rel, n):
    """One batch of n jobs: summed per-job wall clock plus snapshots."""
    total, snaps = 0.0, []
    for _ in range(n):
        start = time.perf_counter()
        prof, reports = job(rel)
        total += time.perf_counter() - start
        snaps.append(snapshot(prof, reports))
    return total, snaps


def test_repeated_jobs_speedup():
    rel = near_key_relation()

    # Baseline: memory plane off — every job re-derives everything.
    # Best-of-REPEATS batches, like the other timed benches.
    memplane.set_enabled(False)
    off_s, off_snaps = float("inf"), []
    try:
        for _ in range(REPEATS):
            memplane.reset_tiers()
            batch_s, snaps = run_jobs(rel, JOBS)
            off_s = min(off_s, batch_s)
            off_snaps += snaps
    finally:
        memplane.set_enabled(None)

    # Memory plane on: register the dataset, pay the one cold job that
    # fills the shared partition tier, then time the warm steady state.
    memplane.set_enabled(True)
    warm_s, warm_snaps = float("inf"), []
    try:
        memplane.reset_tiers()
        memplane.reset_arena()
        assert memplane.get_arena().ingest(rel), "dataset registration failed"
        cold_start = time.perf_counter()
        cold_snap = snapshot(*job(rel))
        cold_seconds = time.perf_counter() - cold_start
        for _ in range(REPEATS):
            batch_s, snaps = run_jobs(rel, JOBS)
            warm_s = min(warm_s, batch_s)
            warm_snaps += snaps
        gauges = memplane.gauges()
    finally:
        memplane.set_enabled(None)
        memplane.reset_arena()
        memplane.reset_tiers()

    # Identity contract, asserted at every scale: the plane is a cache,
    # never a semantic change.
    reference = off_snaps[0]
    for snap in off_snaps[1:] + [cold_snap] + warm_snaps:
        assert snap == reference, "memplane changed an observable result"

    assert gauges["memplane.tier_hits"] > 0, "shared tier never consulted"

    speedup = off_s / warm_s if warm_s > 0 else float("inf")
    _results["jobs"] = {
        "jobs_per_batch": JOBS,
        "repeats": REPEATS,
        "off_seconds": round(off_s, 4),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_s, 4),
        "off_jobs_per_second": round(JOBS / off_s, 2),
        "warm_jobs_per_second": round(JOBS / warm_s, 2),
        "speedup": round(speedup, 2),
        "tier_hits": gauges["memplane.tier_hits"],
        "tier_hit_rate": gauges["memplane.tier_hit_rate"],
        "canonical_cover": len(reference[0]),
    }
    if ASSERT_SPEEDUP:
        assert speedup >= MIN_SPEEDUP, (
            f"warm jobs only {speedup:.2f}x over memplane-off "
            f"({off_s:.3f}s vs {warm_s:.3f}s for {JOBS} jobs)"
        )


def test_per_job_buffer_setup():
    """Per-job shm setup: arena attach vs private full copy."""
    rel = near_key_relation()

    def setup_batch(expect_arena):
        times = []
        for _ in range(SETUPS):
            start = time.perf_counter()
            buffers = SharedRelationBuffers(rel)
            times.append(time.perf_counter() - start)
            assert buffers.arena_backed is expect_arena
            buffers.close()
        return sum(times)

    memplane.set_enabled(False)
    try:
        copy_s = setup_batch(expect_arena=False)
    finally:
        memplane.set_enabled(None)

    memplane.set_enabled(True)
    try:
        memplane.reset_arena()
        assert memplane.get_arena().ingest(rel)
        attach_s = setup_batch(expect_arena=True)
    finally:
        memplane.set_enabled(None)
        memplane.reset_arena()

    _results["buffer_setup"] = {
        "setups_per_batch": SETUPS,
        "private_copy_seconds": round(copy_s, 4),
        "arena_attach_seconds": round(attach_s, 4),
        "setup_ratio": round(copy_s / attach_s, 2) if attach_s > 0 else None,
    }


def teardown_module(module):
    n_rows, n_cols, domain = SHAPE
    report = {
        "bench": "memplane",
        "scale": SCALE,
        "relation": {"n_rows": n_rows, "n_cols": n_cols, "domain_size": domain},
        "speedup_gate": MIN_SPEEDUP if ASSERT_SPEEDUP else None,
        "env": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
        },
        "results": _results,
    }
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / "BENCH_memplane.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    rows = []
    if "jobs" in _results:
        r = _results["jobs"]
        rows.append(
            [
                f"{r['jobs_per_batch']} profile jobs",
                f"{r['off_seconds']:.4f}",
                f"{r['warm_seconds']:.4f}",
                f"{r['speedup']:.2f}x",
            ]
        )
    if "buffer_setup" in _results:
        r = _results["buffer_setup"]
        ratio = r["setup_ratio"]
        rows.append(
            [
                f"{r['setups_per_batch']} buffer setups",
                f"{r['private_copy_seconds']:.4f}",
                f"{r['arena_attach_seconds']:.4f}",
                f"{ratio:.2f}x" if ratio is not None else "-",
            ]
        )
    print(
        "\n"
        + format_table(
            ["workload", "memplane off s", "memplane on s", "speedup"],
            rows,
            title=f"Memory plane, rows={n_rows}, cols={n_cols}, "
            f"dom={domain}, scale={SCALE}",
        )
        + f"\n[written to {path}]"
    )
