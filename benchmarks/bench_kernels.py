"""Micro-benchmark: python vs numpy partition kernels.

Times the refinement / intersection / agree-set hot paths on synthetic
relations for both backends, asserts the results are identical, and
prints a speedup table.  The refinement path and the combined
refine+intersect pipeline (what discovery actually spends its time on)
are gated at >= 3x; the remaining per-operation speedups are recorded
in the artifact.  Also runs full DHyFD discovery on the smallest
benchmark replica with each backend and checks the covers are
byte-identical, so the end-to-end path stays differential-tested at
benchmark scale.
"""

from __future__ import annotations

import time

from repro.bench.tables import format_table
from repro.core.dhyfd import DHyFD
from repro.core.sampling import all_agree_sets
from repro.datasets.benchmarks import load_benchmark
from repro.datasets.synthetic import random_relation
from repro.partitions.stripped import StrippedPartition
from repro.relational import attrset

from _utils import pick, write_artifact

#: (n_rows, domain) for the kernel micro-benchmarks per scale.  Small
#: domains keep clusters large — the regime where partition work
#: dominates discovery time.
SHAPE = pick(smoke=(4_000, 4), quick=(20_000, 6), full=(120_000, 8))
N_COLS = 8
REPEATS = pick(smoke=3, quick=3, full=5)

_rows = []


def _relation():
    n_rows, domain = SHAPE
    return random_relation(n_rows, N_COLS, domain_sizes=domain, seed=7)


def _time(fn):
    """Best-of-N wall clock and the last result."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _record(op, py_seconds, np_seconds):
    speedup = py_seconds / np_seconds if np_seconds > 0 else float("inf")
    _rows.append([op, f"{py_seconds:.4f}", f"{np_seconds:.4f}",
                  f"{speedup:.1f}x"])
    return speedup


def test_refine_many_speedup():
    """The Algorithm 5 refinement hot path must clear 3x."""
    rel = _relation()
    base = StrippedPartition.for_attribute(rel, 0)
    attrs = list(range(1, N_COLS))
    py_s, py_r = _time(lambda: base.refine_many(rel, attrs, backend="python"))
    np_s, np_r = _time(lambda: base.refine_many(rel, attrs, backend="numpy"))
    assert py_r.clusters == np_r.clusters
    speedup = _record("refine_many", py_s, np_s)
    assert speedup >= 3.0, f"refine_many speedup only {speedup:.1f}x"


def test_hot_path_pipeline_speedup():
    """Level-wise pipeline: build singletons, intersect pairs, refine.

    This is the mix of kernel calls TANE/DHyFD actually issue; the
    combined pipeline is the acceptance gate for the vectorization.
    """
    rel = _relation()

    def run(backend):
        singles = [
            StrippedPartition.for_attribute(rel, a, backend=backend)
            for a in range(N_COLS)
        ]
        pairs = [
            singles[i].intersect(singles[j], backend=backend)
            for i in range(N_COLS)
            for j in range(i + 1, N_COLS)
        ]
        refined = singles[0].refine_many(
            rel, list(range(1, N_COLS)), backend=backend
        )
        return [p.clusters for p in pairs] + [refined.clusters]

    py_s, py_r = _time(lambda: run("python"))
    np_s, np_r = _time(lambda: run("numpy"))
    assert py_r == np_r
    speedup = _record("level2 pipeline", py_s, np_s)
    assert speedup >= 2.0, f"pipeline speedup only {speedup:.1f}x"


def test_intersect_speedup():
    rel = _relation()
    left = StrippedPartition.for_attribute(rel, 0)
    right = StrippedPartition.for_attribute(rel, 1)
    py_s, py_r = _time(lambda: left.intersect(right, backend="python"))
    np_s, np_r = _time(lambda: left.intersect(right, backend="numpy"))
    assert py_r.clusters == np_r.clusters
    speedup = _record("intersect", py_s, np_s)
    assert speedup >= 1.5, f"intersect speedup only {speedup:.1f}x"


def test_for_attrs_speedup():
    rel = _relation()
    mask = attrset.from_attrs(range(N_COLS))
    py_s, py_r = _time(
        lambda: StrippedPartition.for_attrs(rel, mask, backend="python")
    )
    np_s, np_r = _time(
        lambda: StrippedPartition.for_attrs(rel, mask, backend="numpy")
    )
    assert py_r.clusters == np_r.clusters
    _record("for_attrs", py_s, np_s)


def test_agree_sets_speedup():
    # quadratic in rows: use a small slice of the benchmark shape
    n_rows = pick(smoke=300, quick=600, full=1200)
    rel = random_relation(n_rows, N_COLS, domain_sizes=SHAPE[1], seed=7)
    py_s, py_r = _time(lambda: all_agree_sets(rel, backend="python"))
    np_s, np_r = _time(lambda: all_agree_sets(rel, backend="numpy"))
    assert py_r == np_r
    _record("all_agree_sets", py_s, np_s)


def test_dhyfd_end_to_end_covers_match():
    """Full discovery on the smallest replica: identical covers."""
    relation = load_benchmark("iris", n_rows=pick(60, 150, 150))
    py_s, py_r = _time(lambda: DHyFD(backend="python").discover(relation))
    np_s, np_r = _time(lambda: DHyFD(backend="numpy").discover(relation))
    assert py_r.fds == np_r.fds
    _record("dhyfd(iris)", py_s, np_s)


def teardown_module(module):
    write_artifact(
        "kernel_speedups",
        format_table(
            ["operation", "python s", "numpy s", "speedup"],
            _rows,
            title=f"Partition-kernel micro-benchmarks, "
            f"rows={SHAPE[0]}, cols={N_COLS}, scale={pick('smoke', 'quick', 'full')}",
        ),
    )
