"""Table IV — data redundancy in numbers and percentages.

For each replica: canonical cover, then #values, #red (excluding null
occurrences), %red, #red+0 (including them) and %red+0.  Complete data
sets report only the null-free columns, like the paper's table layout.
"""

from __future__ import annotations

import pytest

from repro.algorithms import make_algorithm
from repro.bench.tables import format_table
from repro.covers.canonical import canonical_cover
from repro.datasets.benchmarks import get_spec, load_benchmark
from repro.ranking.redundancy import dataset_redundancy

from _utils import TIME_LIMIT, pick, write_artifact

DATASETS = pick(
    smoke=[("iris", 60), ("bridges", 50)],
    quick=[
        ("abalone", 800), ("adult", 1000), ("balance", None),
        ("chess", 800), ("fd_reduced", 800), ("iris", None),
        ("letter", 1000), ("lineitem", 1000), ("nursery", 800),
        ("breast", None), ("bridges", None), ("china", 300),
        ("diabetic", 80), ("echo", None), ("hepatitis", 30),
        ("horse", 14), ("ncvoter", 400), ("uniprot", 300),
        ("pdbx", 1500), ("weather", 1000),
    ],
    full=[
        (name, None)
        for name in [
            "abalone", "adult", "balance", "chess", "fd_reduced", "iris",
            "letter", "lineitem", "nursery", "breast", "bridges", "china",
            "diabetic", "echo", "flight", "hepatitis", "horse", "ncvoter",
            "plista", "uniprot", "pdbx", "weather",
        ]
    ],
)

_rows = []


@pytest.mark.parametrize("dataset,row_override", DATASETS)
def test_table4_dataset(dataset, row_override, benchmark):
    relation = load_benchmark(dataset, n_rows=row_override)
    spec = get_spec(dataset)
    discovered = make_algorithm("dhyfd", time_limit=TIME_LIMIT).discover(relation)
    cover = canonical_cover(discovered.fds)

    report = benchmark.pedantic(
        lambda: dataset_redundancy(relation, cover), rounds=1, iterations=1
    )

    assert 0 <= report.red_excluding_null <= report.red_including_null
    assert report.red_including_null <= report.n_values

    if spec.has_nulls:
        _rows.append(
            [
                dataset,
                report.n_values,
                report.red_excluding_null,
                f"{report.red_percent:.2f}",
                report.red_including_null,
                f"{report.red_including_percent:.2f}",
            ]
        )
    else:
        # complete data: #red+0 equals #red, reported once like the paper
        assert report.red_excluding_null == report.red_including_null
        _rows.append(
            [
                dataset,
                report.n_values,
                report.red_excluding_null,
                f"{report.red_percent:.2f}",
                "",
                "",
            ]
        )


def teardown_module(module):
    headers = ["dataset", "#values", "#red", "%red", "#red+0", "%red+0"]
    write_artifact(
        "table4_redundancy",
        format_table(headers, _rows, title="Table IV: data redundancy"),
    )
