#!/usr/bin/env python
"""End-to-end smoke test for the discovery service (docs/service.md).

Boots ``python -m repro serve`` as a real subprocess on a free port,
uploads a benchmark replica over HTTP, runs discover + rank with
``jobs=2`` and a memory budget, and asserts the served cover is
byte-identical to a direct in-process ``discover()`` — plus that the
repeat request was served from the result store.

Run directly (CI runs this as a dedicated leg)::

    PYTHONPATH=src python benchmarks/smoke_service.py
"""

from __future__ import annotations

import subprocess
import sys
import time

from repro.algorithms.registry import make_algorithm
from repro.datasets import load_benchmark
from repro.relational.fd_io import cover_to_json
from repro.service import ServiceClient

DATASET = "iris"
ROWS = 60
CONFIG = {"algorithm": "dhyfd", "jobs": 2, "memory_budget": "256m"}


def boot_server():
    """Start ``repro serve --port 0`` and parse the bound URL."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0", "--max-workers", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line and proc.poll() is not None:
            raise SystemExit(f"server died on startup (rc={proc.returncode})")
        if "listening on " in line:
            url = line.split("listening on ", 1)[1].split()[0]
            return proc, url
    proc.kill()
    raise SystemExit("server did not announce its URL within 30s")


def main() -> int:
    relation = load_benchmark(DATASET, n_rows=ROWS)
    expected = cover_to_json(
        make_algorithm("dhyfd", jobs=2).discover(relation).fds, relation.schema
    )

    proc, url = boot_server()
    try:
        client = ServiceClient(url, timeout=120.0)
        info = client.upload_rows(
            relation.schema.names, list(relation.iter_rows()), name=DATASET
        )
        print(f"uploaded {DATASET} ({ROWS} rows) as {info['fingerprint'][:12]}...")

        status = client.discover(info["fingerprint"], config=dict(CONFIG))
        assert status["status"] == "done", status
        result = ServiceClient.result_from_status(status)
        served = cover_to_json(result.fds, result.schema)
        assert served == expected, "served cover differs from direct discover()"
        print(f"discover: {len(result.fds)} FDs, byte-identical to direct run")

        rank_status = client.rank(info["fingerprint"], config=dict(CONFIG))
        assert rank_status["status"] == "done", rank_status
        assert rank_status["cached"] is True, "rank should reuse the stored cover"
        assert rank_status["ranking"], "rank produced no ranking"
        print(f"rank: {len(rank_status['ranking'])} ranked FDs, served from store")

        counters = client.metrics()["counters"]
        assert counters["service.discovery.runs"] == 1, counters
        print("metrics: exactly 1 discovery run for 2 requests — OK")
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            proc.kill()
    print("service smoke test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
